package coord_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"muzzle"
	"muzzle/internal/coord"
	"muzzle/internal/faults"
	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

// violate fails the test with the marker the CI chaos job gates on:
// assertions carrying it are correctness invariants (lost cells, divergent
// artifacts), not schedule expectations that a slow machine could miss.
func violate(t *testing.T, format string, args ...any) {
	t.Helper()
	t.Errorf("INVARIANT VIOLATION: "+format, args...)
}

// newChaosWorker is newRealWorker with a caller-controlled cache config,
// so each worker's disk tier can run under its own fault scope and trip
// thresholds.
func newChaosWorker(t *testing.T, id string, cc muzzle.CacheConfig, wrap func(http.Handler) http.Handler) (*httptest.Server, *muzzle.Cache) {
	t.Helper()
	cache, err := muzzle.NewCache(cc)
	if err != nil {
		t.Fatal(err)
	}
	mgr := service.New(service.Config{
		Workers:  2,
		Cache:    cache,
		Flight:   muzzle.NewFlight(),
		WorkerID: id,
	})
	h := http.Handler(mgr.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, cache
}

// TestChaosSweepSurvivesSeededFaultSchedule is the chaos acceptance test:
// a full coordinator + three-worker + shared-cache stack runs the e2e grid
// under a seeded fault schedule — injected disk I/O errors on the
// survivors' cache tiers (low trip threshold, fast re-probe), injected
// transport latency / connection resets / 5xx on the coordinator's client,
// and one worker killed mid-sweep after finishing work whose reply is
// lost. The invariants: zero lost cells, report.json and report.csv
// byte-identical to a fault-free single-node run of the same grid, and the
// run dir fully resumable. Schedule expectations (faults actually fired,
// a disk tier actually tripped) are asserted without the violation marker:
// they pin the test's power, not the system's correctness.
func TestChaosSweepSurvivesSeededFaultSchedule(t *testing.T) {
	inj := faults.New(20220427,
		// Transport: the first three round trips (the initial probes) see
		// added latency, the next two die with connection resets, and two
		// more are served but answered with a synthesized 500 — work done,
		// answer lost. Budgets make the schedule finite; everything after
		// call 6 is clean.
		faults.Rule{Scope: faults.ScopeCoordNet, Op: faults.OpHTTP, Kind: faults.KindLatency, Latency: 5 * time.Millisecond, Count: 3},
		faults.Rule{Scope: faults.ScopeCoordNet, Op: faults.OpHTTP, Kind: faults.KindReset, Count: 2},
		faults.Rule{Scope: faults.ScopeCoordNet, Op: faults.OpHTTP, Kind: faults.KindHTTP500, Count: 2},
		// Disk: each survivor's first four cache-tier I/O ops fail, enough
		// to trip a tier (threshold 2) on its first executed cell; the
		// budget leaves the re-probe path clean so a tripped tier recovers.
		faults.Rule{Scope: faults.ScopeCoordDisk + ".a", Count: 4},
		faults.Rule{Scope: faults.ScopeCoordDisk + ".c", Count: 4},
	)
	restore := faults.Install(inj)
	defer restore()

	sharedCache := t.TempDir()
	diskCfg := func(scope string) muzzle.CacheConfig {
		return muzzle.CacheConfig{
			MaxEntries:        256,
			Dir:               sharedCache,
			DiskTripThreshold: 2,
			DiskRetryInterval: 50 * time.Millisecond,
			FaultScope:        scope,
		}
	}

	// Victim middleware (same shape as the plain e2e): one good cell, one
	// cell whose work completes but whose reply is torn away, then dead.
	var cellCalls atomic.Int64
	var killed atomic.Bool
	victimWrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" && r.Method == http.MethodPost {
				switch cellCalls.Add(1) {
				case 1:
					inner.ServeHTTP(w, r)
				case 2:
					rec := httptest.NewRecorder()
					inner.ServeHTTP(rec, r) // the work happens and is cached
					killed.Store(true)
					panic(http.ErrAbortHandler) // ...but the reply never arrives
				default:
					panic(http.ErrAbortHandler)
				}
				return
			}
			if killed.Load() {
				http.Error(w, "dead", http.StatusInternalServerError)
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	slowWrap := func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" {
				time.Sleep(25 * time.Millisecond)
			}
			inner.ServeHTTP(w, r)
		})
	}

	srvA, cacheA := newChaosWorker(t, "w-a", diskCfg(faults.ScopeCoordDisk+".a"), slowWrap)
	srvV, cacheV := newChaosWorker(t, "w-victim", diskCfg(""), victimWrap)
	srvC, cacheC := newChaosWorker(t, "w-c", diskCfg(faults.ScopeCoordDisk+".c"), slowWrap)

	c, err := coord.New(coord.Config{
		Workers:           []string{srvA.URL, srvV.URL, srvC.URL},
		PerWorkerInFlight: 1,
		CellTimeout:       time.Minute,
		ProbeInterval:     50 * time.Millisecond,
		NoWorkerTimeout:   15 * time.Second,
		MaxAttempts:       6,
		Backoff:           coord.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		BreakerThreshold:  3,
		BreakerCooldown:   200 * time.Millisecond,
		FaultScope:        faults.ScopeCoordNet,
	})
	if err != nil {
		t.Fatal(err)
	}

	distDir := t.TempDir()
	rep, err := c.RunDir(t.Context(), e2eGrid(), distDir)
	if err != nil {
		violate(t, "chaos run failed: %v", err)
		return
	}

	// Invariant: zero lost cells, every cell with its full compiler set.
	if n := rep.Failures(); n != 0 {
		for _, cr := range rep.Cells {
			if cr.Error != "" {
				t.Logf("cell %d (%s): %s", cr.Index, cr.ID, cr.Error)
			}
		}
		violate(t, "%d cells lost under the fault schedule", n)
	}
	for _, cr := range rep.Cells {
		if len(cr.Outcomes) != len(rep.Grid.Compilers) {
			violate(t, "cell %s has %d outcomes, want %d", cr.ID, len(cr.Outcomes), len(rep.Grid.Compilers))
		}
	}

	// Invariant: artifacts byte-identical to a fault-free single-node run.
	localDir := t.TempDir()
	exp, err := sweep.Expand(e2eGrid())
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := exp.RunDir(t.Context(), localDir, sweep.Options{Flight: muzzle.NewFlight()})
	if err != nil || localRep.Failures() != 0 {
		t.Fatalf("fault-free reference run failed: %v (%d failures)", err, localRep.Failures())
	}
	for _, name := range []string{"report.json", "report.csv"} {
		dist, err := os.ReadFile(filepath.Join(distDir, name))
		if err != nil {
			violate(t, "reading distributed %s: %v", name, err)
			continue
		}
		local, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(dist) != string(local) {
			violate(t, "%s differs between the chaos run and the fault-free run", name)
		}
	}

	// Invariant: the chaos dir is complete and resumable.
	exp2, err := sweep.Expand(e2eGrid())
	if err != nil {
		t.Fatal(err)
	}
	d, err := sweep.OpenDir(distDir, exp2)
	if err != nil {
		violate(t, "reopening chaos run dir: %v", err)
	} else if d.DoneCount() != len(exp2.Cells) {
		violate(t, "chaos dir records %d done cells, want %d", d.DoneCount(), len(exp2.Cells))
	}

	// Schedule power (no marker): the faults really fired and really bit.
	if inj.Total() == 0 {
		t.Error("fault schedule fired nothing — the chaos run was a plain run")
	}
	fired := inj.Fired()
	if fired[faults.ScopeCoordNet+"/http"] == 0 {
		t.Error("no transport faults fired")
	}
	trips := cacheA.Stats().DiskTrips + cacheC.Stats().DiskTrips
	if trips == 0 {
		t.Error("no survivor disk tier tripped under the disk fault schedule")
	}
	var diskErrs uint64
	for _, cache := range []*muzzle.Cache{cacheA, cacheV, cacheC} {
		diskErrs += cache.Stats().DiskErrors
	}
	met := c.MetricsSnapshot()
	if met.Reassigned < 1 {
		t.Errorf("reassigned = %d, want >= 1 (resets, 500s, and the victim's death all reassign)", met.Reassigned)
	}
	t.Logf("chaos: %d faults fired (%v), %d disk errors, %d disk trips, %d reassigned, %d breaker opens, victim dispatches %d",
		inj.Total(), fired, diskErrs, trips, met.Reassigned, met.BreakerOpens, cellCalls.Load())
}
