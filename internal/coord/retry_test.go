package coord_test

import (
	"net/http"
	"testing"
	"time"

	"muzzle/internal/coord"
)

func TestRetryAfterParsing(t *testing.T) {
	h := func(v string) http.Header {
		hdr := http.Header{}
		if v != "" {
			hdr.Set("Retry-After", v)
		}
		return hdr
	}
	if d := coord.RetryAfter(h("")); d != 0 {
		t.Errorf("absent header = %v, want 0", d)
	}
	if d := coord.RetryAfter(h("3")); d != 3*time.Second {
		t.Errorf("seconds = %v, want 3s", d)
	}
	if d := coord.RetryAfter(h("0")); d != 0 {
		t.Errorf("zero seconds = %v, want 0", d)
	}
	if d := coord.RetryAfter(h("-5")); d != 0 {
		t.Errorf("negative = %v, want 0", d)
	}
	if d := coord.RetryAfter(h("soon")); d != 0 {
		t.Errorf("garbage = %v, want 0", d)
	}
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := coord.RetryAfter(h(future)); d <= 3*time.Second || d > 5*time.Second {
		t.Errorf("http-date = %v, want ~5s", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := coord.RetryAfter(h(past)); d != 0 {
		t.Errorf("past http-date = %v, want 0", d)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	b := coord.Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	for attempt := 0; attempt < 8; attempt++ {
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt, 0)
			if d <= 0 || d > b.Max {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, b.Max)
			}
		}
	}
	// A server hint is a floor, never shortened by jitter.
	hint := 300 * time.Millisecond
	for i := 0; i < 50; i++ {
		d := b.Delay(0, hint)
		if d < hint || d > hint+b.Base/2+time.Millisecond {
			t.Fatalf("hinted delay %v outside [%v, %v]", d, hint, hint+b.Base/2)
		}
	}
	// Zero value works and huge attempt counts don't overflow.
	var zero coord.Backoff
	if d := zero.Delay(1000, 0); d <= 0 || d > 10*time.Second {
		t.Fatalf("zero-value delay(1000) = %v", d)
	}
}
