package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing to recover
}

// counters are the coordinator's cumulative dispatch counters.
type counters struct {
	cellsTotal     atomic.Int64
	cellsPreloaded atomic.Int64
	dispatched     atomic.Int64
	completed      atomic.Int64
	retried        atomic.Int64
	reassigned     atomic.Int64
	failed         atomic.Int64
	breakerOpens   atomic.Int64
}

// Metrics is a snapshot of the coordinator's dispatch state.
type Metrics struct {
	// CellsTotal counts cells across all runs; CellsPreloaded the subset
	// already satisfied by a resumable run dir.
	CellsTotal     int64 `json:"cells_total"`
	CellsPreloaded int64 `json:"cells_preloaded"`
	// Dispatched counts cell POSTs issued; Completed those that returned a
	// valid result; Retried the 429 backpressure waits; Reassigned the
	// cells re-queued after a worker failure; Failed the cells given up on.
	Dispatched int64 `json:"cells_dispatched"`
	Completed  int64 `json:"cells_completed"`
	Retried    int64 `json:"cells_retried"`
	Reassigned int64 `json:"cells_reassigned"`
	Failed     int64 `json:"cells_failed"`
	// BreakerOpens counts circuit-breaker opens across the fleet.
	BreakerOpens int64 `json:"breaker_opens"`

	Workers []WorkerMetrics `json:"workers"`
}

// WorkerMetrics is one worker's slice of the snapshot.
type WorkerMetrics struct {
	URL     string `json:"url"`
	ID      string `json:"id,omitempty"`
	Version string `json:"version,omitempty"`
	Healthy bool   `json:"healthy"`

	InFlight   int64 `json:"in_flight"`
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	Errors     int64 `json:"errors"`

	// BreakerOpen reports an open circuit (dispatches suspended until
	// the cooldown's half-open trial); BreakerOpens counts how often
	// this worker's circuit has opened.
	BreakerOpen  bool  `json:"breaker_open,omitempty"`
	BreakerOpens int64 `json:"breaker_opens,omitempty"`

	// LatencySum/LatencyCount accumulate per-dispatch wall time (seconds),
	// Prometheus summary style: sum/count = mean dispatch latency.
	LatencySum   float64 `json:"latency_sum_seconds"`
	LatencyCount int64   `json:"latency_count"`

	LastError string `json:"last_error,omitempty"`
}

// MetricsSnapshot collects the current counters.
func (c *Coordinator) MetricsSnapshot() Metrics {
	out := Metrics{
		CellsTotal:     c.met.cellsTotal.Load(),
		CellsPreloaded: c.met.cellsPreloaded.Load(),
		Dispatched:     c.met.dispatched.Load(),
		Completed:      c.met.completed.Load(),
		Retried:        c.met.retried.Load(),
		Reassigned:     c.met.reassigned.Load(),
		Failed:         c.met.failed.Load(),
		BreakerOpens:   c.met.breakerOpens.Load(),
	}
	for _, w := range c.workers {
		w.mu.Lock()
		wm := WorkerMetrics{
			URL:     w.url,
			ID:      w.info.ID,
			Version: w.info.Version,
			Healthy: w.healthy,

			LastError: w.lastErr,
		}
		w.mu.Unlock()
		wm.InFlight = w.inflight.Load()
		wm.Dispatched = w.dispatched.Load()
		wm.Completed = w.completed.Load()
		wm.Errors = w.errors.Load()
		wm.LatencySum = time.Duration(w.latencyNS.Load()).Seconds()
		wm.LatencyCount = w.latencyN.Load()
		wm.BreakerOpen, wm.BreakerOpens = w.breakerSnapshot()
		out.Workers = append(out.Workers, wm)
	}
	return out
}

// Handler serves the coordinator's observability endpoints:
//
//	GET /healthz   liveness + per-worker health as JSON
//	GET /metrics   Prometheus-style text metrics
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	met := c.MetricsSnapshot()
	healthy := 0
	for _, wm := range met.Workers {
		if wm.Healthy {
			healthy++
		}
	}
	status := "ok"
	code := http.StatusOK
	if healthy == 0 {
		status = "no_workers"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":          status,
		"workers_total":   len(met.Workers),
		"workers_healthy": healthy,
		"metrics":         met,
	})
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the repo takes no dependencies).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	met := c.MetricsSnapshot()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("muzzlecoord_cells_total", "Cells across all runs (preloaded included).", met.CellsTotal)
	counter("muzzlecoord_cells_preloaded_total", "Cells satisfied from a resumable run dir.", met.CellsPreloaded)
	counter("muzzlecoord_cells_dispatched_total", "Cell dispatch attempts POSTed to workers.", met.Dispatched)
	counter("muzzlecoord_cells_completed_total", "Cells completed with a valid worker result.", met.Completed)
	counter("muzzlecoord_cells_retried_total", "Dispatches retried after worker backpressure (429).", met.Retried)
	counter("muzzlecoord_cells_reassigned_total", "Cells reassigned after a worker failure.", met.Reassigned)
	counter("muzzlecoord_cells_failed_total", "Cells given up on after exhausting their attempt budget.", met.Failed)
	counter("muzzlecoord_breaker_opens_total", "Per-worker circuit breaker opens across the fleet.", met.BreakerOpens)

	perWorker := func(name, typ, help string, value func(WorkerMetrics) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, wm := range met.Workers {
			fmt.Fprintf(&b, "%s{worker=%q} %s\n", name, wm.URL, value(wm))
		}
	}
	boolGauge := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	perWorker("muzzlecoord_worker_healthy", "gauge", "Worker health (1 = in rotation).",
		func(wm WorkerMetrics) string { return boolGauge(wm.Healthy) })
	perWorker("muzzlecoord_worker_in_flight", "gauge", "Cells currently dispatched to the worker.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.InFlight) })
	perWorker("muzzlecoord_worker_dispatched_total", "counter", "Cell dispatch attempts sent to the worker.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.Dispatched) })
	perWorker("muzzlecoord_worker_completed_total", "counter", "Cells the worker completed.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.Completed) })
	perWorker("muzzlecoord_worker_errors_total", "counter", "Dispatch and probe failures attributed to the worker.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.Errors) })
	perWorker("muzzlecoord_worker_latency_seconds_sum", "counter", "Summed dispatch wall time.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%g", wm.LatencySum) })
	perWorker("muzzlecoord_worker_latency_seconds_count", "counter", "Dispatches measured.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.LatencyCount) })
	perWorker("muzzlecoord_worker_breaker_open", "gauge", "Circuit breaker position (1 = open, dispatches suspended).",
		func(wm WorkerMetrics) string { return boolGauge(wm.BreakerOpen) })
	perWorker("muzzlecoord_worker_breaker_opens_total", "counter", "Circuit breaker opens for the worker.",
		func(wm WorkerMetrics) string { return fmt.Sprintf("%d", wm.BreakerOpens) })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
