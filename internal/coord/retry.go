package coord

import (
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryAfter parses a Retry-After response header (RFC 9110 §10.2.3):
// either delay-seconds or an HTTP-date. Absent or unparseable headers —
// and dates in the past — return 0, which callers treat as "no hint".
func RetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Backoff shapes the coordinator's jittered retry delays. The zero value
// uses the defaults (base 200ms, max 10s).
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retry number attempt (0-based). With a
// server hint (Retry-After) the delay is the hint plus up to half a base
// of jitter — never below the hint, since the server knows its own queue.
// Without one it is equal-jittered exponential backoff: half deterministic
// growth, half random, so a burst of rejected dispatches fans back out
// instead of reconverging on the worker in lockstep.
func (b Backoff) Delay(attempt int, hint time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 10 * time.Second
	}
	if hint > 0 {
		return hint + time.Duration(rand.Int63n(int64(base)/2+1))
	}
	if attempt > 30 {
		attempt = 30 // avoid shifting into overflow; capped by max anyway
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}
