#!/usr/bin/env sh
# scripts/bench.sh — run the compile benchmarks and write the perf
# trajectory snapshot BENCH_compile.json (ns/op, B/op, allocs/op, and the
# shuttles/op artifact metric per benchmark).
#
# Usage:
#   scripts/bench.sh                 # default selection, writes BENCH_compile.json
#   BENCH_PATTERN='.' scripts/bench.sh        # run everything
#   BENCH_OUT=/tmp/b.json scripts/bench.sh    # alternate output path
#   BENCH_TIME=5x scripts/bench.sh            # alternate -benchtime
#
# The default selection is the compile-path benchmarks whose trajectory the
# repo tracks: the Table II/III compiles (the paper artifacts) and the public
# Pipeline entry points. CI runs this non-gating and uploads the JSON as an
# artifact; numbers from different hosts are comparable only to themselves.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkTableII$|BenchmarkTableIIRandom|BenchmarkTableIII|BenchmarkPipelineCompileQFT16|BenchmarkFig2DAGBuild}"
OUT="${BENCH_OUT:-BENCH_compile.json}"
TIME="${BENCH_TIME:-3x}"

TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" . | tee "$TXT"
go run ./cmd/benchjson -note "${BENCH_NOTE:-}" < "$TXT" > "$OUT"
echo "wrote $OUT"
