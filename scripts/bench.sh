#!/usr/bin/env sh
# scripts/bench.sh — run the compile benchmarks and extend the perf
# trajectory BENCH_compile.json: one benchjson snapshot (ns/op, B/op,
# allocs/op, shuttles/op) is APPENDED per run, so the file records the
# repo's per-PR performance history instead of only the latest numbers.
# After appending, the last two entries are diffed (cmd/benchdiff) and
# ns/op regressions past 10% are flagged — as a warning, not a failure.
#
# Usage:
#   scripts/bench.sh                 # append a snapshot to BENCH_compile.json
#   BENCH_PATTERN='.' scripts/bench.sh        # run everything
#   BENCH_OUT=/tmp/b.json scripts/bench.sh    # alternate trajectory path
#   BENCH_TIME=5x scripts/bench.sh            # alternate -benchtime
#   BENCH_NOTE='...' scripts/bench.sh         # context embedded in the entry
#
# The default selection is the compile-path benchmarks whose trajectory the
# repo tracks: the Table II/III compiles (the paper artifacts) and the public
# Pipeline entry points. CI runs this non-gating and uploads the JSON as an
# artifact; numbers from different hosts are comparable only to themselves.
set -eu

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkTableII$|BenchmarkTableIIRandom|BenchmarkTableIII|BenchmarkPipelineCompileQFT16|BenchmarkFig2DAGBuild}"
OUT="${BENCH_OUT:-BENCH_compile.json}"
TIME="${BENCH_TIME:-3x}"

TXT="$(mktemp)"
SNAP="$(mktemp)"
trap 'rm -f "$TXT" "$SNAP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" . | tee "$TXT"
go run ./cmd/benchjson -note "${BENCH_NOTE:-}" < "$TXT" > "$SNAP"
go run ./cmd/benchdiff -append "$SNAP" "$OUT"
# Non-gating trajectory diff: warns on >10% ns/op regressions vs the
# previous entry, if there is one.
go run ./cmd/benchdiff "$OUT" || true
echo "wrote $OUT"
