package muzzle

import (
	"context"
	"errors"
	"fmt"

	"muzzle/internal/verify"
)

// ErrorCode classifies a public-API failure so callers can branch without
// string matching.
type ErrorCode string

// Error codes returned at the public boundary.
const (
	// ErrBadOption marks an invalid Pipeline option value.
	ErrBadOption ErrorCode = "bad_option"
	// ErrUnknownCompiler marks a compiler name absent from the registry.
	ErrUnknownCompiler ErrorCode = "unknown_compiler"
	// ErrDuplicateCompiler marks a registration under a taken name.
	ErrDuplicateCompiler ErrorCode = "duplicate_compiler"
	// ErrCompile marks a compilation failure.
	ErrCompile ErrorCode = "compile"
	// ErrSimulate marks a simulator failure.
	ErrSimulate ErrorCode = "simulate"
	// ErrEvaluate marks an evaluation-run failure (possibly partial: the
	// run's successful results are still returned alongside it).
	ErrEvaluate ErrorCode = "evaluate"
	// ErrCanceled marks a run aborted by context cancellation or timeout;
	// errors.Is(err, context.Canceled) (or DeadlineExceeded) also holds.
	ErrCanceled ErrorCode = "canceled"
	// ErrVerify marks a schedule rejected by the independent verifier
	// (WithVerify or MUZZLE_VERIFY); the cause chain contains a
	// *muzzle.VerifyError listing the violations.
	ErrVerify ErrorCode = "verify"
)

// Error is the structured error type of the public API: a stable code, the
// operation that failed, and the wrapped cause. It replaces the ad-hoc
// fmt.Errorf strings the free functions used to return.
type Error struct {
	// Code classifies the failure.
	Code ErrorCode
	// Op is the public entry point that failed, e.g. "Pipeline.Evaluate".
	Op string
	// Err is the underlying cause; errors.Is/As traverse it.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("muzzle: %s: %s", e.Op, e.Code)
	}
	return fmt.Sprintf("muzzle: %s [%s]: %v", e.Op, e.Code, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// newError builds a structured public-boundary error.
func newError(code ErrorCode, op string, err error) *Error {
	return &Error{Code: code, Op: op, Err: err}
}

// newErrorf builds a structured error from a formatted cause.
func newErrorf(code ErrorCode, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Err: fmt.Errorf(format, args...)}
}

// wrapErr wraps an internal error for the public boundary under op,
// upgrading the code to ErrCanceled when the cause chain contains a
// context error (so callers can tell aborts from genuine failures) and to
// ErrVerify when it contains a verifier rejection.
func wrapErr(code ErrorCode, op string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = ErrCanceled
	}
	var vErr *verify.Error
	if errors.As(err, &vErr) {
		code = ErrVerify
	}
	return &Error{Code: code, Op: op, Err: err}
}
