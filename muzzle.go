// Package muzzle is a shuttle-aware compiler toolkit for multi-trap
// (QCCD) trapped-ion quantum computers, reproducing the system described in
//
//	A. A. Saki, R. O. Topaloglu, S. Ghosh,
//	"Muzzle the Shuttle: Efficient Compilation for Multi-Trap Trapped-Ion
//	Quantum Computers", DATE 2022 (arXiv:2111.07961).
//
// The package exposes the full stack: a quantum-circuit IR with an OpenQASM
// 2.0 reader/writer, the QCCD machine model (traps, ion chains, shuttle
// primitives), two complete compilers — the QCCDSim-style baseline of
// Murali et al. (ISCA 2020) and the paper's optimized compiler with
// future-ops shuttle direction, opportunistic gate re-ordering and
// nearest-neighbor-first re-balancing — a timing/heating/fidelity
// simulator, the paper's benchmark suite, and the evaluation harness that
// regenerates its tables and figures.
//
// # Pipeline: the primary API
//
// Pipeline is the entry point: a context-aware bundle of hardware model,
// compiler set, and simulator constants, assembled with functional options.
// With no options it reproduces the paper's evaluation setup exactly.
//
//	p, err := muzzle.NewPipeline() // the paper's setup
//	res, err := p.Compile(ctx, muzzle.QFT(16))
//	// res.Shuttles, res.CompileTime, ...
//	rep, err := p.Simulate(ctx, res)
//	// rep.Fidelity, rep.Duration, ...
//	results, err := p.EvaluateNISQ(ctx) // Table II rows
//
// Every Pipeline method takes a context.Context and cancels cooperatively —
// down to the compiler scheduling loop — so callers can impose timeouts and
// abort long evaluation runs promptly. Evaluation runs compare any number
// of compilers resolved by name from the process-wide registry
// (RegisterCompiler; "baseline" and "optimized" are pre-registered), stream
// per-circuit results as they complete (Pipeline.EvaluateStream,
// WithProgress), survive partial failures (completed circuits are returned
// alongside an errors.Join of the failures), and report structured *Error
// values with stable codes at the public boundary.
//
// # Caching and the compilation service
//
// WithCache installs a content-addressed compile cache (NewCache): results
// are keyed by a stable hash of circuit content, machine, compiler set,
// and simulator constants, held in an in-memory LRU with an optional
// JSON-on-disk tier that survives restarts. cmd/muzzled exposes the same
// pipeline as an HTTP service — a job queue with a bounded worker pool,
// per-job cancellation, SSE result streaming, and Prometheus-style
// metrics — built on internal/service and sharing one cache across jobs.
//
// # Schedule verification
//
// Verify is an independent machine-model replayer: it walks a compiled
// schedule's op stream from scratch and reports structured Violations for
// any broken invariant (topology edges, trap capacity, gate co-location,
// DAG order with measurement wiring, ion conservation). WithVerify turns
// the check on for every evaluation run (violations fail with ErrVerify),
// and MUZZLE_VERIFY=1 forces it from the environment.
//
// # Deprecated free functions
//
// The original flat-function surface (Compile, CompileBaseline, Evaluate,
// EvaluateNISQ, EvaluateRandom, Simulate, ...) remains as thin wrappers
// over the paper's fixed two-compiler setup with context.Background(); new
// code should construct a Pipeline instead.
//
// The subpackages under internal/ hold the implementation; this package is
// the stable public surface re-exporting what downstream users need.
package muzzle

import (
	"context"
	"io"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/eval"
	"muzzle/internal/exact"
	"muzzle/internal/machine"
	"muzzle/internal/qasm"
	"muzzle/internal/sim"
	"muzzle/internal/topo"
	"muzzle/internal/trace"
)

// Circuit is an ordered list of gates over a qubit register.
type Circuit = circuit.Circuit

// Gate is one operation in a circuit.
type Gate = circuit.Gate

// MachineConfig describes the QCCD hardware: topology, trap capacity, and
// communication capacity.
type MachineConfig = machine.Config

// Topology is the trap interconnection graph.
type Topology = topo.Topology

// Compiler is a policy-parameterized QCCD compiler.
type Compiler = compiler.Compiler

// CompileResult is the outcome of a compilation: the operation trace,
// shuttle counts, gate order, and timing.
type CompileResult = compiler.Result

// SimParams bundle the timing, heating, and fidelity model constants.
type SimParams = sim.Params

// SimReport is the simulator's verdict on a compiled program: duration,
// program fidelity, and operation statistics.
type SimReport = sim.Report

// BenchSpec describes one benchmark of the paper's suite.
type BenchSpec = bench.Spec

// EvalOptions configure an evaluation run over the benchmark suite.
type EvalOptions = eval.Options

// EvalResult holds per-compiler outcomes for one circuit; the paper's
// artifacts read its reference pair (Pair, Reduction, Improvement).
type EvalResult = eval.BenchResult

// OptimizerOptions select which of the paper's three heuristics are active;
// the zero value enables all of them with the paper's parameters.
type OptimizerOptions = core.Options

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM parses OpenQASM 2.0 source into a circuit.
func ParseQASM(name, src string) (*Circuit, error) { return qasm.Parse(name, src) }

// ParseQASMFile parses an OpenQASM 2.0 file.
func ParseQASMFile(path string) (*Circuit, error) { return qasm.ParseFile(path) }

// WriteQASM serializes a circuit as OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error { return qasm.Write(w, c) }

// WriteQASMFile serializes a circuit to a file.
func WriteQASMFile(path string, c *Circuit) error { return qasm.WriteFile(path, c) }

// WriteQASMString serializes a circuit and returns the QASM source.
func WriteQASMString(c *Circuit) (string, error) { return qasm.WriteString(c) }

// Decompose rewrites a circuit into the trapped-ion native gate set
// (R, RZ, MS).
func Decompose(c *Circuit) (*Circuit, error) { return circuit.Decompose(c) }

// PaperMachine returns the hardware model of the paper's evaluation: the
// L6 linear topology with total trap capacity 17 and communication
// capacity 2 (Section IV-A).
func PaperMachine() MachineConfig { return machine.PaperL6() }

// LinearMachine returns an n-trap linear machine.
//
// Deprecated: LinearMachine panics on invalid parameters; user-supplied
// values must go through NewLinearMachine, which validates and returns an
// error instead.
func LinearMachine(traps, capacity, commCapacity int) MachineConfig {
	return MachineConfig{Topology: topo.Linear(traps), Capacity: capacity, CommCapacity: commCapacity}
}

// GridMachine returns a rows x cols mesh machine.
//
// Deprecated: GridMachine panics on invalid parameters; user-supplied
// values must go through NewGridMachine.
func GridMachine(rows, cols, capacity, commCapacity int) MachineConfig {
	return MachineConfig{Topology: topo.Grid(rows, cols), Capacity: capacity, CommCapacity: commCapacity}
}

// RingMachine returns an n-trap ring machine.
//
// Deprecated: RingMachine panics on invalid parameters; user-supplied
// values must go through NewRingMachine.
func RingMachine(traps, capacity, commCapacity int) MachineConfig {
	return MachineConfig{Topology: topo.Ring(traps), Capacity: capacity, CommCapacity: commCapacity}
}

// validatedMachine assembles a MachineConfig from a topology-constructor
// result, folding both the topology error and capacity validation into one
// structured error. It backs every user-facing machine constructor.
func validatedMachine(op string, t *Topology, err error, capacity, commCapacity int) (MachineConfig, error) {
	if err != nil {
		return MachineConfig{}, newError(ErrBadOption, op, err)
	}
	cfg := MachineConfig{Topology: t, Capacity: capacity, CommCapacity: commCapacity}
	if err := cfg.Validate(); err != nil {
		return MachineConfig{}, newError(ErrBadOption, op, err)
	}
	return cfg, nil
}

// NewLinearMachine returns an n-trap linear machine, validating every
// parameter (traps >= 1, capacity > 0, 0 <= commCapacity < capacity). It
// is the error-returning counterpart of LinearMachine for user-supplied
// configuration (CLI flags, service requests, sweep grids).
func NewLinearMachine(traps, capacity, commCapacity int) (MachineConfig, error) {
	t, err := topo.NewLinear(traps)
	return validatedMachine("NewLinearMachine", t, err, capacity, commCapacity)
}

// NewRingMachine returns an n-trap ring machine, validating every
// parameter (traps >= 3, capacity > 0, 0 <= commCapacity < capacity).
func NewRingMachine(traps, capacity, commCapacity int) (MachineConfig, error) {
	t, err := topo.NewRing(traps)
	return validatedMachine("NewRingMachine", t, err, capacity, commCapacity)
}

// NewGridMachine returns a rows x cols mesh machine, validating every
// parameter (positive dimensions, capacity > 0, 0 <= commCapacity <
// capacity).
func NewGridMachine(rows, cols, capacity, commCapacity int) (MachineConfig, error) {
	t, err := topo.NewGrid(rows, cols)
	return validatedMachine("NewGridMachine", t, err, capacity, commCapacity)
}

// NewCustomMachine returns a machine over an arbitrary trap graph given as
// an undirected edge list. The graph must be connected, free of self-loops
// and duplicate edges, and every endpoint must be in [0, traps); capacity
// parameters are validated like the other constructors.
func NewCustomMachine(name string, traps int, edges [][2]int, capacity, commCapacity int) (MachineConfig, error) {
	t, err := topo.New(name, traps, edges)
	return validatedMachine("NewCustomMachine", t, err, capacity, commCapacity)
}

// NewOptimizedCompiler returns the paper's compiler: future-ops shuttle
// direction (proximity 6), opportunistic gate re-ordering, and
// nearest-neighbor-first re-balancing with max-score ion selection.
func NewOptimizedCompiler() *Compiler { return core.New() }

// NewOptimizedCompilerWithOptions returns an optimized-compiler variant
// with individual heuristics toggled (for ablation studies).
func NewOptimizedCompilerWithOptions(o OptimizerOptions) *Compiler {
	return core.NewWithOptions(o)
}

// NewBaselineCompiler returns the QCCDSim-style baseline compiler of
// Murali et al. (ISCA 2020): excess-capacity shuttle direction and
// trap-0-first re-balancing, no re-ordering.
func NewBaselineCompiler() *Compiler { return baseline.New() }

// Compile compiles a circuit with the paper's optimized compiler.
//
// Deprecated: use Pipeline.Compile, which adds context cancellation and
// configurable compilers.
func Compile(c *Circuit, cfg MachineConfig) (*CompileResult, error) {
	return core.New().Compile(c, cfg)
}

// CompileBaseline compiles a circuit with the baseline compiler.
//
// Deprecated: use Pipeline.CompileWith(ctx, "baseline", c).
func CompileBaseline(c *Circuit, cfg MachineConfig) (*CompileResult, error) {
	return baseline.New().Compile(c, cfg)
}

// DefaultSimParams returns the simulator constants used by the evaluation
// (see DESIGN.md "Model constants").
func DefaultSimParams() SimParams { return sim.DefaultParams() }

// Simulate replays a compiled program under the default model constants,
// returning duration and program-fidelity estimates.
//
// Deprecated: use Pipeline.Simulate, which adds context cancellation and
// per-pipeline simulator constants.
func Simulate(res *CompileResult) (*SimReport, error) {
	return sim.Simulate(res.Config, res.InitialPlacement, res.Ops, sim.DefaultParams())
}

// SimulateWith replays a compiled program under custom constants.
func SimulateWith(res *CompileResult, params SimParams) (*SimReport, error) {
	return sim.Simulate(res.Config, res.InitialPlacement, res.Ops, params)
}

// SuccessEstimate is a Monte Carlo program-success estimate with a
// binomial confidence interval.
type SuccessEstimate = sim.SuccessEstimate

// SampleSuccess estimates program success probability by Monte Carlo:
// each gate fails independently with probability 1 - F(gate); a trial
// succeeds when no gate fails.
//
// Deprecated: use SampleSuccessContext, which cancels the sampling workers
// when ctx fires instead of running every trial to completion.
func SampleSuccess(res *CompileResult, trials int, seed int64) (*SuccessEstimate, error) {
	return sim.SampleSuccess(res.Config, res.InitialPlacement, res.Ops, sim.DefaultParams(), trials, seed)
}

// SampleSuccessContext is SampleSuccess with cooperative cancellation: the
// analytic replay and every sampling worker observe ctx, so a canceled
// caller stops the estimate within one trial chunk.
func SampleSuccessContext(ctx context.Context, res *CompileResult, trials int, seed int64) (*SuccessEstimate, error) {
	return sim.SampleSuccessContext(ctx, res.Config, res.InitialPlacement, res.Ops, sim.DefaultParams(), trials, seed)
}

// Benchmarks returns the paper's five NISQ benchmarks (Table II).
func Benchmarks() []BenchSpec { return bench.Catalog() }

// QFT returns the n-qubit quantum Fourier transform benchmark.
func QFT(n int) *Circuit { return bench.QFT(n) }

// RandomCircuit returns a seeded random benchmark circuit with exactly
// gates2q two-qubit gates.
func RandomCircuit(qubits, gates2q int, seed int64) *Circuit {
	return bench.Random(qubits, gates2q, seed)
}

// DefaultEvalOptions returns the paper's evaluation setup.
//
// Deprecated: construct a Pipeline with NewPipeline instead; its zero
// options are this setup.
func DefaultEvalOptions() EvalOptions { return eval.DefaultOptions() }

// Evaluate runs the configured compilers on one circuit and simulates the
// traces.
//
// Deprecated: use Pipeline.EvaluateCircuit, which adds context
// cancellation.
func Evaluate(c *Circuit, opt EvalOptions) (*EvalResult, error) {
	return eval.RunCircuit(context.Background(), c, opt)
}

// EvaluateNISQ runs the five NISQ benchmarks through the configured
// compilers.
//
// Deprecated: use Pipeline.EvaluateNISQ, which adds context cancellation,
// streaming, and partial-failure results.
func EvaluateNISQ(opt EvalOptions) ([]*EvalResult, error) {
	return eval.RunNISQ(context.Background(), opt)
}

// EvaluateRandom runs the random benchmark suite through the configured
// compilers.
//
// Deprecated: use Pipeline.EvaluateRandom, which adds context
// cancellation, streaming, and partial-failure results.
func EvaluateRandom(opt EvalOptions) ([]*EvalResult, error) {
	return eval.RunRandom(context.Background(), opt)
}

// FormatTableII renders the shuttle-reduction table (paper Table II).
func FormatTableII(nisq, random []*EvalResult) string { return eval.TableII(nisq, random) }

// FormatFigure8 renders the fidelity-improvement chart (paper Fig. 8).
func FormatFigure8(nisq, random []*EvalResult) string { return eval.Figure8(nisq, random) }

// FormatTableIII renders the compile-time table (paper Table III).
func FormatTableIII(nisq, random []*EvalResult) string { return eval.TableIII(nisq, random) }

// FormatSummary renders the abstract's headline statistics.
func FormatSummary(nisq, random []*EvalResult) string { return eval.Summary(nisq, random) }

// WriteTraceJSON exports a compiled schedule as JSON for external analysis.
func WriteTraceJSON(w io.Writer, res *CompileResult) error { return trace.WriteJSON(w, res) }

// RenderTrace writes ASCII trap-occupancy snapshots of a compiled schedule.
func RenderTrace(w io.Writer, res *CompileResult) error {
	return trace.Render(w, res, trace.RenderOptions{})
}

// WriteScheduleSVG renders the compiled schedule as a trap x time Gantt
// chart (gates blue, shuttle primitives warm).
func WriteScheduleSVG(w io.Writer, res *CompileResult) error {
	return trace.WriteSVG(w, res, trace.SVGOptions{})
}

// ExactMinShuttles returns the provably minimal shuttle count for a small
// circuit executed in program order from the given placement (exponential;
// rejects instances beyond a few million placement states — the
// intractability the paper cites when justifying heuristics,
// Section IV-E1).
func ExactMinShuttles(c *Circuit, cfg MachineConfig, placement [][]int) (int, error) {
	native, err := circuit.Decompose(c)
	if err != nil {
		return 0, err
	}
	return exact.MinShuttles(native, cfg, placement)
}

// Placement is an initial-mapping policy (paper Section IV-E3 notes the
// mapping as an exploration axis).
type Placement = compiler.Placement

// GreedyMapper is the paper's default initial-mapping policy.
type GreedyMapper = compiler.GreedyMapper

// RoundRobinMapper deals qubits to traps in index order.
type RoundRobinMapper = compiler.RoundRobinMapper

// RandomMapper shuffles qubits into traps reproducibly from a seed.
type RandomMapper = compiler.RandomMapper

// RefinedMapper wraps a base mapper with Kernighan-Lin-style swap
// refinement of the weighted cut.
type RefinedMapper = compiler.RefinedMapper
