module muzzle

go 1.24
