package muzzle

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	c := QFT(12)
	cfg := LinearMachine(3, 8, 2)
	res, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates2Q != 12*11 {
		t.Errorf("QFT(12) executed %d 2Q gates, want %d", res.Gates2Q, 12*11)
	}
	rep, err := Simulate(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shuttles != res.Shuttles {
		t.Errorf("sim shuttles %d != compile shuttles %d", rep.Shuttles, res.Shuttles)
	}
	if rep.Fidelity <= 0 || rep.Fidelity > 1 {
		t.Errorf("fidelity = %g", rep.Fidelity)
	}
}

func TestBaselineVsOptimizedFacade(t *testing.T) {
	c := RandomCircuit(20, 150, 5)
	cfg := LinearMachine(4, 8, 2)
	rb, err := CompileBaseline(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Shuttles > rb.Shuttles {
		t.Errorf("optimized (%d) worse than baseline (%d)", ro.Shuttles, rb.Shuttles)
	}
}

func TestQASMFacade(t *testing.T) {
	c := NewCircuit("demo", 3)
	c.Add1Q("h", 0)
	c.Add2Q("cx", 0, 2)
	var buf bytes.Buffer
	if err := WriteQASM(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ParseQASM("demo", buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Gates) != 2 {
		t.Fatalf("gates = %d", len(got.Gates))
	}
	d, err := Decompose(got)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count2Q() != 1 {
		t.Errorf("decomposed 2Q = %d", d.Count2Q())
	}
}

func TestMachineConstructors(t *testing.T) {
	if PaperMachine().Capacity != 17 {
		t.Error("PaperMachine capacity wrong")
	}
	if GridMachine(2, 3, 8, 2).Topology.NumTraps() != 6 {
		t.Error("GridMachine traps wrong")
	}
	if RingMachine(5, 8, 2).Topology.Diameter() != 2 {
		t.Error("RingMachine diameter wrong")
	}
	if len(Benchmarks()) != 5 {
		t.Error("Benchmarks catalog wrong")
	}
}

func TestEvaluateFacade(t *testing.T) {
	opt := DefaultEvalOptions()
	opt.Config = LinearMachine(3, 8, 2)
	r, err := Evaluate(RandomCircuit(14, 80, 11), opt)
	if err != nil {
		t.Fatal(err)
	}
	t2 := FormatTableII([]*EvalResult{r}, nil)
	if !strings.Contains(t2, "TABLE II") {
		t.Error("TableII formatting broken")
	}
	if !strings.Contains(FormatFigure8([]*EvalResult{r}, nil), "FIG. 8") {
		t.Error("Figure8 formatting broken")
	}
	if !strings.Contains(FormatTableIII([]*EvalResult{r}, nil), "TABLE III") {
		t.Error("TableIII formatting broken")
	}
	if !strings.Contains(FormatSummary([]*EvalResult{r}, nil), "circuits=1") {
		t.Error("Summary formatting broken")
	}
}

func TestTraceFacade(t *testing.T) {
	res, err := Compile(RandomCircuit(10, 30, 2), LinearMachine(3, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"shuttles\"") {
		t.Error("JSON trace missing fields")
	}
	buf.Reset()
	if err := RenderTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "initial:") {
		t.Error("trace render missing")
	}
}

func TestAblationFacade(t *testing.T) {
	c := RandomCircuit(16, 100, 3)
	cfg := LinearMachine(4, 6, 2)
	variants := map[string]*Compiler{
		"full":        NewOptimizedCompilerWithOptions(OptimizerOptions{}),
		"no-reorder":  NewOptimizedCompilerWithOptions(OptimizerOptions{DisableReorder: true}),
		"no-futureop": NewOptimizedCompilerWithOptions(OptimizerOptions{DisableFutureOps: true}),
		"baseline":    NewBaselineCompiler(),
	}
	shuttles := map[string]int{}
	for name, comp := range variants {
		res, err := comp.Compile(c, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shuttles[name] = res.Shuttles
	}
	if shuttles["full"] > shuttles["baseline"] {
		t.Errorf("full (%d) worse than baseline (%d)", shuttles["full"], shuttles["baseline"])
	}
}

func TestSampleSuccessFacade(t *testing.T) {
	res, err := Compile(QFT(8), LinearMachine(2, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampleSuccess(res, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 0 || est.Mean > 1 {
		t.Errorf("mean = %g", est.Mean)
	}
	if est.Analytic <= 0 || est.Analytic > 1 {
		t.Errorf("analytic = %g", est.Analytic)
	}
}

func TestExactFacade(t *testing.T) {
	c := NewCircuit("tiny", 4)
	c.Add2Q("cx", 0, 2)
	cfg := LinearMachine(2, 4, 1)
	opt, err := ExactMinShuttles(c, cfg, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("exact optimum = %d, want 1", opt)
	}
}

func TestMapperFacade(t *testing.T) {
	c := RandomCircuit(12, 60, 4)
	cfg := LinearMachine(3, 6, 2)
	res, err := NewOptimizedCompiler().CompileWithMapper(c, cfg, RefinedMapper{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates2Q != 60 {
		t.Errorf("gates = %d", res.Gates2Q)
	}
	var _ Placement = GreedyMapper{}
	var _ Placement = RoundRobinMapper{}
	var _ Placement = RandomMapper{}
}

func TestScheduleSVGFacade(t *testing.T) {
	res, err := Compile(RandomCircuit(8, 20, 2), LinearMachine(2, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScheduleSVG(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no SVG output")
	}
}
