package muzzle

import (
	"io"
	"time"

	"muzzle/internal/cache"
	"muzzle/internal/eval"
)

// CacheConfig sizes a compile cache and optionally roots its disk
// persistence.
type CacheConfig struct {
	// MaxEntries bounds the in-memory LRU (0 = 1024).
	MaxEntries int
	// Dir, when non-empty, persists result summaries as JSON under
	// Dir/<k[:2]>/<k>.json (k = the hex content hash); a later process
	// pointed at the same directory serves them without recompiling.
	Dir string
	// MaxDiskEntries bounds the persisted file count under Dir (0 =
	// unbounded). Inserts past the bound delete the oldest files by
	// modification time (reads refresh mtimes, so eviction is
	// approximately LRU); a long-running daemon thus cannot fill its
	// volume. Eviction and resident-file counts are exposed via Stats.
	MaxDiskEntries int
	// DiskTripThreshold is how many consecutive disk-tier I/O errors
	// trip the cache to memory-only operation (0 = 8). A tripped tier
	// never fails a request — lookups and inserts keep working from
	// memory — and re-probes the disk periodically, recovering on the
	// first successful operation. Trips and errors are exposed via
	// Stats (DiskTripped, DiskTrips, DiskErrors).
	DiskTripThreshold int
	// DiskRetryInterval is how long a tripped disk tier waits between
	// re-probe attempts (0 = 30s).
	DiskRetryInterval time.Duration
	// FaultScope, when non-empty, subjects the disk tier's I/O to the
	// process-global fault injector under this scope — the hook the
	// chaos tests use to exercise trips. Leave empty in production.
	FaultScope string
}

// Cache is a content-addressed store of completed per-circuit evaluation
// results, keyed by a stable hash of circuit content + machine + compiler
// set + simulator constants. Install one with WithCache; a single Cache is
// safe to share across pipelines and goroutines (the muzzled service runs
// every job through one). In-memory hits return the full original result;
// entries reloaded from the disk tier are summaries (counters, policies,
// and simulator estimates — no operation trace).
type Cache struct {
	lru *cache.LRU
}

// NewCache builds a compile cache. The persistence directory, when
// configured, is created eagerly so path problems surface here.
func NewCache(cfg CacheConfig) (*Cache, error) {
	lru, err := cache.New(cache.Config{
		MaxEntries:        cfg.MaxEntries,
		Dir:               cfg.Dir,
		MaxDiskEntries:    cfg.MaxDiskEntries,
		DiskTripThreshold: cfg.DiskTripThreshold,
		DiskRetryInterval: cfg.DiskRetryInterval,
		FaultScope:        cfg.FaultScope,
	})
	if err != nil {
		return nil, newError(ErrBadOption, "NewCache", err)
	}
	return &Cache{lru: lru}, nil
}

// CacheStats snapshot the cache effectiveness counters.
type CacheStats = cache.Stats

// Stats returns a point-in-time snapshot of hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats { return c.lru.Stats() }

// Len returns the current in-memory entry count.
func (c *Cache) Len() int { return c.lru.Len() }

// WithCache installs a compile cache on the pipeline: evaluation runs
// (Evaluate, EvaluateStream, EvaluateCircuit, EvaluateNISQ, EvaluateRandom)
// consult it before invoking any compiler and store fresh results on the
// way out. Runs with a custom WithMapper bypass the cache, since the mapper
// is not part of the content hash.
func WithCache(c *Cache) PipelineOption {
	return func(p *Pipeline) error {
		if c == nil {
			return newErrorf(ErrBadOption, "WithCache", "cache must not be nil")
		}
		p.opt.Cache = c.lru
		return nil
	}
}

// EvalResultJSON is the machine-readable per-circuit result schema shared
// by the muzzled service, cmd/muzzle -json, and the cache's disk tier.
type EvalResultJSON = eval.ResultJSON

// EvalOutcomeJSON is one compiler's summary within an EvalResultJSON.
type EvalOutcomeJSON = eval.OutcomeJSON

// EncodeEvalResult summarizes an evaluation result into its JSON schema.
func EncodeEvalResult(r *EvalResult) *EvalResultJSON { return eval.EncodeResult(r) }

// WriteEvalResultJSON serializes an evaluation result summary as indented
// JSON — the same schema the muzzled service returns.
func WriteEvalResultJSON(w io.Writer, r *EvalResult) error {
	return eval.WriteResultJSON(w, r)
}

// ReadEvalResultJSON parses a summary written by WriteEvalResultJSON (or
// returned by the muzzled service).
func ReadEvalResultJSON(r io.Reader) (*EvalResultJSON, error) {
	return eval.ReadResultJSON(r)
}
