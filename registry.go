package muzzle

import (
	"errors"

	"muzzle/internal/eval"
	"muzzle/internal/registry"
)

// CompilerBaseline and CompilerOptimized are the registry names of the two
// pre-registered compilers: the QCCDSim-style baseline of Murali et al.
// (ISCA 2020) and the paper's optimized compiler.
const (
	CompilerBaseline  = registry.Baseline
	CompilerOptimized = registry.Optimized
)

// CompilerFactory builds a fresh compiler instance. Evaluation runs invoke
// the factory once per compilation, concurrently; the factory must be
// goroutine-safe, the returned compiler need not be.
type CompilerFactory func() *Compiler

// RegisterCompiler adds a named compiler to the process-wide registry.
// Registered names become valid arguments to WithCompilers and participate
// in Pipeline.Evaluate runs next to the pre-registered "baseline" and
// "optimized" pair. Registration fails with ErrDuplicateCompiler when the
// name is taken and ErrBadOption on an empty name or nil factory.
func RegisterCompiler(name string, factory CompilerFactory) error {
	var f registry.Factory
	if factory != nil {
		f = func() *Compiler { return factory() }
	}
	if err := registry.Register(name, f); err != nil {
		code := ErrBadOption
		if errors.Is(err, registry.ErrDuplicate) {
			code = ErrDuplicateCompiler
		}
		return newError(code, "RegisterCompiler", err)
	}
	return nil
}

// MustRegisterCompiler is RegisterCompiler, panicking on error; intended
// for init-time registration of compiler variants.
func MustRegisterCompiler(name string, factory CompilerFactory) {
	if err := RegisterCompiler(name, factory); err != nil {
		panic(err)
	}
}

// RegisteredCompilers returns every registered compiler name, sorted.
func RegisteredCompilers() []string { return registry.Names() }

// CompilerInfo describes one registry entry, as listed by CompilerCatalog
// and the muzzled service's GET /v1/compilers.
type CompilerInfo struct {
	// Name is the registry name usable with WithCompilers.
	Name string `json:"name"`
	// Builtin marks the two pre-registered compilers of the paper's
	// evaluation ("baseline", "optimized").
	Builtin bool `json:"builtin"`
	// Default marks membership in the default evaluation pair a
	// zero-option Pipeline compares.
	Default bool `json:"default"`
}

// CompilerCatalog returns every registered compiler with its role flags,
// sorted by name. Default is derived from the actual default evaluation
// set, so it tracks any future change to the zero-option pair.
func CompilerCatalog() []CompilerInfo {
	defaults := make(map[string]bool)
	for _, n := range eval.DefaultCompilers() {
		defaults[n] = true
	}
	names := registry.Names()
	out := make([]CompilerInfo, 0, len(names))
	for _, n := range names {
		out = append(out, CompilerInfo{
			Name:    n,
			Builtin: n == registry.Baseline || n == registry.Optimized,
			Default: defaults[n],
		})
	}
	return out
}

// HasCompiler reports whether a compiler name is registered.
func HasCompiler(name string) bool { return registry.Has(name) }
