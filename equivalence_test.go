package muzzle

// Trace-equivalence harness for the future-gate index (PR: zero-rescan
// scheduling). The engine has two read paths: the indexed default and the
// naive rescan reference (Compiler.DisableIndex). They must produce
// byte-identical traces — same Ops, same Order, same Shuttles — on every
// workload, or the index is not an optimization but a behavior change that
// would silently invalidate the paper's Table II/III artifacts.

import (
	"fmt"
	"math/rand"
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/machine"
	"muzzle/internal/topo"
)

// equivMachines are the hardware models the equivalence suite sweeps: the
// paper's L6 plus ring and grid topologies (different path structure, so
// re-balancing and avoid lists behave differently).
func equivMachines() map[string]machine.Config {
	return map[string]machine.Config{
		"L6":   machine.PaperL6(),
		"R6":   {Topology: topo.Ring(6), Capacity: 17, CommCapacity: 2},
		"G2x3": {Topology: topo.Grid(2, 3), Capacity: 17, CommCapacity: 2},
	}
}

// equivCompilers build fresh compiler pairs per run so no state leaks.
func equivCompilers() map[string]func() *compiler.Compiler {
	return map[string]func() *compiler.Compiler{
		"baseline":  func() *compiler.Compiler { return baseline.New() },
		"optimized": core.New,
	}
}

func assertTraceEqual(t *testing.T, naive, fast *compiler.Result) {
	t.Helper()
	if naive.Shuttles != fast.Shuttles {
		t.Fatalf("shuttles diverged: naive=%d indexed=%d", naive.Shuttles, fast.Shuttles)
	}
	if len(naive.Order) != len(fast.Order) {
		t.Fatalf("order length diverged: naive=%d indexed=%d", len(naive.Order), len(fast.Order))
	}
	for i := range naive.Order {
		if naive.Order[i] != fast.Order[i] {
			t.Fatalf("order diverged at %d: naive gate %d vs indexed gate %d", i, naive.Order[i], fast.Order[i])
		}
	}
	if len(naive.Ops) != len(fast.Ops) {
		t.Fatalf("trace length diverged: naive=%d indexed=%d", len(naive.Ops), len(fast.Ops))
	}
	for i := range naive.Ops {
		if naive.Ops[i] != fast.Ops[i] {
			t.Fatalf("trace diverged at op %d: naive %v vs indexed %v", i, naive.Ops[i], fast.Ops[i])
		}
	}
	if naive.Reorders != fast.Reorders || naive.Rebalances != fast.Rebalances {
		t.Fatalf("decision counters diverged: reorders %d/%d, rebalances %d/%d",
			naive.Reorders, fast.Reorders, naive.Rebalances, fast.Rebalances)
	}
}

func checkEquivalence(t *testing.T, c *circuit.Circuit, cfg machine.Config) {
	t.Helper()
	for name, build := range equivCompilers() {
		naiveComp := build()
		naiveComp.DisableIndex = true
		fastComp := build()
		naive, errN := naiveComp.Compile(c, cfg)
		fast, errF := fastComp.Compile(c, cfg)
		if (errN == nil) != (errF == nil) {
			t.Fatalf("%s: error divergence: naive=%v indexed=%v", name, errN, errF)
		}
		if errN != nil {
			continue // both failed identically-shaped; nothing to compare
		}
		assertTraceEqual(t, naive, fast)
	}
}

// TestTraceEquivalenceRandomSuite sweeps randomized circuits over all three
// topologies with both compilers.
func TestTraceEquivalenceRandomSuite(t *testing.T) {
	type spec struct{ qubits, gates2q int }
	specs := []spec{{12, 40}, {30, 200}, {60, 600}}
	for mname, cfg := range equivMachines() {
		for _, s := range specs {
			for seed := int64(1); seed <= 3; seed++ {
				c := bench.Random(s.qubits, s.gates2q, seed)
				t.Run(mname+"/"+c.Name, func(t *testing.T) {
					checkEquivalence(t, c, cfg)
				})
			}
		}
	}
}

// TestTraceEquivalencePaperSuite runs the five Table II benchmarks (the
// artifacts the README pins) through both read paths on the paper machine.
func TestTraceEquivalencePaperSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("paper suite equivalence is slow; run without -short")
	}
	cfg := machine.PaperL6()
	for _, spec := range bench.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			checkEquivalence(t, spec.Build(), cfg)
		})
	}
}

// TestTraceEquivalenceCongested forces heavy re-balancing and re-ordering:
// tiny traps, no communication slack, dense interaction graphs — the regime
// where every policy decision point fires.
func TestTraceEquivalenceCongested(t *testing.T) {
	for _, cfg := range []machine.Config{
		{Topology: topo.Linear(4), Capacity: 4, CommCapacity: 1},
		{Topology: topo.Ring(5), Capacity: 3, CommCapacity: 1},
		{Topology: topo.Grid(2, 2), Capacity: 5, CommCapacity: 1},
	} {
		for seed := int64(1); seed <= 5; seed++ {
			maxQ := cfg.Topology.NumTraps() * cfg.MaxInitialLoad()
			c := bench.Random(maxQ, maxQ*6, seed)
			t.Run(cfg.Topology.Name()+"/"+c.Name, func(t *testing.T) {
				checkEquivalence(t, c, cfg)
			})
		}
	}
}

// TestTraceEquivalenceHoists pins the hardest equivalence case: Algorithm-1
// hoists, whose candidate evaluation uses per-candidate excluded windows and
// which mutate the order mid-compile (the index must re-sort itself). Dense
// 1Q interleaving suppresses hoists (the nearest 1Q predecessor is always
// pending), so this suite uses 2Q-only circuits on initially-full traps and
// asserts the optimized compiler actually reordered something.
func TestTraceEquivalenceHoists(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := machine.Config{Topology: topo.Linear(4), Capacity: 4, CommCapacity: 0}
	totalReorders := 0
	for seed := 0; seed < 6; seed++ {
		nq := cfg.Topology.NumTraps()*cfg.Capacity - 2
		c := circuit.New(fmt.Sprintf("dense2q-%d", seed), nq)
		for i := 0; i < nq*8; i++ {
			a := rng.Intn(nq)
			b := rng.Intn(nq - 1)
			if b >= a {
				b++
			}
			c.Add2Q("ms", a, b)
		}
		naive := core.New()
		naive.DisableIndex = true
		fast := core.New()
		resN, errN := naive.Compile(c, cfg)
		resF, errF := fast.Compile(c, cfg)
		if (errN == nil) != (errF == nil) {
			t.Fatalf("seed %d: error divergence: naive=%v indexed=%v", seed, errN, errF)
		}
		if errN != nil {
			continue
		}
		assertTraceEqual(t, resN, resF)
		totalReorders += resF.Reorders
	}
	if totalReorders == 0 {
		t.Error("hoist suite performed no reorders; the excluded-window path is untested")
	}
}
