package muzzle

import (
	"muzzle/internal/verify"
)

// Violation is one broken schedule invariant reported by the independent
// verifier: the op index it was detected at (-1 for stream-global checks),
// a stable kind, and a human-readable detail.
type Violation = verify.Violation

// ViolationKind categorizes a Violation.
type ViolationKind = verify.Kind

// Violation kinds reported by Verify.
const (
	// ViolationPlacement marks an invalid initial placement.
	ViolationPlacement = verify.KindPlacement
	// ViolationEdge marks a shuttle move over a non-existent topology edge.
	ViolationEdge = verify.KindEdge
	// ViolationCapacity marks a trap filled beyond its total capacity.
	ViolationCapacity = verify.KindCapacity
	// ViolationPresence marks an op whose ion is not where the op claims.
	ViolationPresence = verify.KindPresence
	// ViolationCoLocation marks a 2Q gate on ions in different traps.
	ViolationCoLocation = verify.KindCoLocation
	// ViolationProtocol marks a broken SPLIT/MOVE/MERGE/SWAP protocol.
	ViolationProtocol = verify.KindProtocol
	// ViolationOrder marks a gate-order or gate-identity violation
	// (DAG precedence, execute-once coverage, measurement wiring).
	ViolationOrder = verify.KindOrder
	// ViolationConservation marks an ion lost, duplicated, or in transit.
	ViolationConservation = verify.KindConservation
	// ViolationMetadata marks result counters or Order disagreeing with
	// the trace, or a summary-only result that cannot be replayed.
	ViolationMetadata = verify.KindMetadata
)

// VerifyError is the typed error carrying a rejected schedule's
// violations. Evaluation runs with WithVerify (and the muzzled job path
// with "verify": true) fail with one of these in the cause chain; the
// public *Error wrapper then carries code ErrVerify.
type VerifyError = verify.Error

// Verify replays a compilation result's operation stream against the
// machine model from scratch — independently of the compiler engine that
// produced it — and reports every broken invariant: shuttle moves must
// traverse real topology edges into traps with a free slot, trap capacity
// must never be exceeded, every gate must execute with its ion(s) present
// (2Q operands co-located), the executed sequence must be a valid
// linearization of the circuit's dependency DAG with measurement wiring
// preserved, and ions must be conserved. An empty slice means the schedule
// is provably legal.
//
// Results reloaded from a cache's disk tier are summaries without an
// operation trace; they yield a single ViolationMetadata entry saying so.
func Verify(res *CompileResult) []Violation { return verify.Result(res) }

// WithVerify makes every evaluation run (Evaluate, EvaluateStream,
// EvaluateCircuit, EvaluateNISQ, EvaluateRandom) replay each freshly
// compiled schedule through the independent verifier; violations fail the
// circuit with an ErrVerify error carrying a *VerifyError. Compilation
// typically dominates verification cost by a wide margin, so the check is
// cheap insurance for untrusted inputs and new compiler variants. The
// MUZZLE_VERIFY=1 environment variable forces the same check on any
// pipeline without code changes.
func WithVerify() PipelineOption {
	return func(p *Pipeline) error {
		p.opt.Verify = true
		return nil
	}
}
