// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, the format of the repo's committed
// BENCH_compile.json perf-trajectory snapshots (see scripts/bench.sh).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_compile.json
//
// Every benchmark line becomes one entry with ns/op, B/op, allocs/op, and
// any custom metrics (the compile benchmarks report shuttles/op, which ties
// each timing to the paper's Table II artifact it reproduces). Environment
// lines (goos/goarch/cpu/pkg) are captured once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level document.
type Report struct {
	// Note is free-form context for the snapshot (e.g. the before/after
	// summary of the change it documents), set with -note.
	Note       string      `json:"note,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	note := flag.String("note", "", "free-form note embedded in the report")
	flag.Parse()
	rep := Report{Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseLine parses "BenchmarkX-8  3  123 ns/op  4.0 shuttles/op  5 B/op ...".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so snapshots diff cleanly across hosts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		case "MB/s":
			// throughput; keep with the custom metrics
			fallthrough
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
