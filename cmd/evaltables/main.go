// Command evaltables regenerates the paper's evaluation artifacts on the
// paper's hardware model (L6, capacity 17, communication capacity 2):
// Table II (shuttle reduction), Fig. 8 (program fidelity improvement), and
// Table III (compilation time overhead).
//
// Usage:
//
//	evaltables [-random N] [-table 2|3] [-fig 8] [-progress]
//	           [-compilers CSV] [-parallelism N] [-timeout D]
//
// Without -table/-fig selectors, all three artifacts are printed. -random N
// limits the random suite to its first N circuits (0 = all 120); the full
// suite takes a minute or two. -compilers adds registered compilers beyond
// the paper's pair; runs with more than two print the per-compiler shuttle
// matrix as well. Ctrl-C (or -timeout) cancels the run cooperatively and
// still prints the artifacts for every circuit completed so far.
//
// A run in which any circuit failed still prints the partial tables but
// exits with a non-zero status, so scripts cannot mistake a partial run
// for a clean pass.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"muzzle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaltables:", err)
		os.Exit(1)
	}
}

func run() error {
	randomLimit := flag.Int("random", 0, "evaluate only the first N random circuits (0 = all 120)")
	table := flag.Int("table", 0, "print only this table (2 or 3)")
	fig := flag.Int("fig", 0, "print only this figure (8)")
	progress := flag.Bool("progress", false, "print per-circuit progress")
	noRandom := flag.Bool("norandom", false, "skip the random suite entirely")
	compilers := flag.String("compilers", "", "comma-separated registered compiler names (default: baseline,optimized)")
	parallelism := flag.Int("parallelism", 0, "concurrent circuit evaluations (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no timeout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []muzzle.PipelineOption{
		muzzle.WithRandomLimit(*randomLimit),
		muzzle.WithParallelism(*parallelism),
	}
	var names []string
	if *compilers != "" {
		for _, n := range strings.Split(*compilers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		opts = append(opts, muzzle.WithCompilers(names...))
	}
	// The progress callback is always installed: it counts per-circuit
	// failures so a partially failed run exits non-zero (scripts must not
	// mistake partial tables for a clean pass); -progress only controls
	// whether the per-circuit lines are printed.
	var failed int
	opts = append(opts, muzzle.WithProgress(func(ev muzzle.EvalEvent) {
		switch ev.Kind {
		case muzzle.EvalCompleted:
			if *progress {
				d, pct := ev.Result.Reduction()
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %-28s -%d shuttles (%.2f%%)\n",
					ev.Index+1, ev.Total, ev.Circuit, d, pct)
			}
		case muzzle.EvalFailed:
			// In-flight circuits aborted by Ctrl-C/-timeout surface as
			// EvalFailed with a context error; a deliberate cancel is not
			// a failure (the canceled() carve-out below prints partials
			// and exits 0).
			if !canceled(ev.Err) {
				failed++
			}
			if *progress {
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %-28s ERROR: %v\n",
					ev.Index+1, ev.Total, ev.Circuit, ev.Err)
			}
		}
	}))
	p, err := muzzle.NewPipeline(opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "evaluating 5 NISQ benchmarks on L6 (capacity 17, comm 2), compilers %v...\n",
		p.Compilers())
	// Evaluation errors are partial by design (completed circuits are
	// still returned), so a failure must not abort before the tables
	// print; it is surfaced as the non-zero exit below instead.
	var runErr error
	nisq, err := p.EvaluateNISQ(ctx)
	if err != nil && !canceled(err) {
		runErr = err
	}
	var random []*muzzle.EvalResult
	if !*noRandom && ctx.Err() == nil {
		n := *randomLimit
		if n == 0 {
			n = len(p.RandomCircuits())
		}
		fmt.Fprintf(os.Stderr, "evaluating %d random circuits...\n", n)
		random, err = p.EvaluateRandom(ctx)
		if err != nil && !canceled(err) {
			runErr = err
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "run canceled; printing artifacts for %d completed circuits\n",
			len(nisq)+len(random))
	}

	all := *table == 0 && *fig == 0
	if all || *table == 2 {
		fmt.Println(muzzle.FormatTableII(nisq, random))
	}
	if all || *fig == 8 {
		fmt.Println(muzzle.FormatFigure8(nisq, random))
	}
	if all || *table == 3 {
		fmt.Println(muzzle.FormatTableIII(nisq, random))
	}
	if all && len(p.Compilers()) > 2 && len(nisq) > 0 {
		fmt.Println(muzzle.FormatCompilerMatrix(nisq))
	}
	fmt.Println(muzzle.FormatSummary(nisq, random))
	if failed > 0 {
		return fmt.Errorf("%d circuit(s) failed; tables above are partial", failed)
	}
	if runErr != nil {
		return runErr
	}
	return nil
}

// canceled reports whether err is (or joins) a context cancellation; the
// command treats that as "print what we have", not a failure.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
