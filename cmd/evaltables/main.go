// Command evaltables regenerates the paper's evaluation artifacts on the
// paper's hardware model (L6, capacity 17, communication capacity 2):
// Table II (shuttle reduction), Fig. 8 (program fidelity improvement), and
// Table III (compilation time overhead).
//
// Usage:
//
//	evaltables [-random N] [-table 2|3] [-fig 8] [-progress]
//
// Without -table/-fig selectors, all three artifacts are printed. -random N
// limits the random suite to its first N circuits (0 = all 120); the full
// suite takes a minute or two.
package main

import (
	"flag"
	"fmt"
	"os"

	"muzzle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaltables:", err)
		os.Exit(1)
	}
}

func run() error {
	randomLimit := flag.Int("random", 0, "evaluate only the first N random circuits (0 = all 120)")
	table := flag.Int("table", 0, "print only this table (2 or 3)")
	fig := flag.Int("fig", 0, "print only this figure (8)")
	progress := flag.Bool("progress", false, "print per-circuit progress")
	noRandom := flag.Bool("norandom", false, "skip the random suite entirely")
	flag.Parse()

	opt := muzzle.DefaultEvalOptions()
	opt.RandomLimit = *randomLimit
	if *progress {
		opt.Progress = os.Stderr
	}

	fmt.Fprintln(os.Stderr, "evaluating 5 NISQ benchmarks on L6 (capacity 17, comm 2)...")
	nisq, err := muzzle.EvaluateNISQ(opt)
	if err != nil {
		return err
	}
	var random []*muzzle.EvalResult
	if !*noRandom {
		n := *randomLimit
		if n == 0 {
			n = 120
		}
		fmt.Fprintf(os.Stderr, "evaluating %d random circuits...\n", n)
		random, err = muzzle.EvaluateRandom(opt)
		if err != nil {
			return err
		}
	}

	all := *table == 0 && *fig == 0
	if all || *table == 2 {
		fmt.Println(muzzle.FormatTableII(nisq, random))
	}
	if all || *fig == 8 {
		fmt.Println(muzzle.FormatFigure8(nisq, random))
	}
	if all || *table == 3 {
		fmt.Println(muzzle.FormatTableIII(nisq, random))
	}
	fmt.Println(muzzle.FormatSummary(nisq, random))
	return nil
}
