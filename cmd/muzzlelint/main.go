// Command muzzlelint runs the repo's custom analyzer suite (internal/lint)
// over Go packages. Two modes:
//
// Standalone, for CI and local use — this mode builds the whole-program
// call graph the interprocedural analyzers (allocflow, ctxflow, lockorder)
// consume:
//
//	go run ./cmd/muzzlelint ./...
//	go run ./cmd/muzzlelint -stats ./...
//	go run ./cmd/muzzlelint -fix ./internal/service      # dry-run diff
//	go run ./cmd/muzzlelint -fix -w ./internal/service   # apply in place
//
// As a vet tool, which lets `go vet` drive it incrementally through the
// build cache using the unitchecker protocol (-V=full handshake, -flags
// enumeration, then one .cfg file per package). In this mode each package
// is analyzed in isolation, so the call graph covers only the current
// package and the interprocedural analyzers degrade to their
// intra-package subset:
//
//	go build -o muzzlelint ./cmd/muzzlelint
//	go vet -vettool=$PWD/muzzlelint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"muzzle/internal/lint"
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/callgraph"
	"muzzle/internal/lint/fixer"
	"muzzle/internal/lint/load"
)

func main() {
	// The vet handshake comes before flag parsing: vet probes the tool's
	// identity with -V=full and its flag set with -flags.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" {
			// Hex suffix doubles as the protocol's cache-busting build ID.
			fmt.Printf("%s version devel comments-go-here buildID=muzzlelint-2\n", os.Args[0])
			return
		}
		if arg == "-flags" {
			// Flags vet is allowed to forward to us.
			fmt.Println(`[{"Name":"fix","Bool":true,"Usage":"preview suggested fixes as a diff"},` +
				`{"Name":"w","Bool":true,"Usage":"with -fix, apply fixes in place"},` +
				`{"Name":"stats","Bool":true,"Usage":"print per-analyzer finding counts and wall time"}]`)
			return
		}
	}

	fix := flag.Bool("fix", false, "preview suggested fixes as a dry-run diff")
	write := flag.Bool("w", false, "with -fix, apply the fixes in place instead of previewing")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: muzzlelint [-fix [-w]] [-stats] <packages>\n       muzzlelint <package>.cfg  (vet unitchecker mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, *fix, *write, *stats))
}

// finding pairs a diagnostic with the package whose pass produced it so
// fixes can be applied and output ordered globally.
type finding struct {
	analyzer string
	fset     *token.FileSet
	diag     analysis.Diagnostic
}

func standalone(patterns []string, fix, write, stats bool) int {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}

	// One whole-program call graph across every loaded package: the loader
	// shares a FileSet, so the units compose directly. Packages with type
	// errors abort below anyway, but keep the graph clean of them.
	var units []*callgraph.Unit
	var fset *token.FileSet
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			continue
		}
		fset = p.Fset
		units = append(units, &callgraph.Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info})
	}
	var prog *callgraph.Program
	if fset != nil {
		prog = callgraph.Build(fset, units)
	}

	counts := map[string]int{}
	elapsed := map[string]time.Duration{}
	var findings []finding
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "muzzlelint: %s: %v\n", p.ImportPath, e)
			}
			return 2
		}
		for _, a := range lint.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Program:   prog,
			}
			pass.Report = func(d analysis.Diagnostic) {
				counts[a.Name]++
				findings = append(findings, finding{a.Name, p.Fset, d})
			}
			t0 := time.Now()
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "muzzlelint: %s: %s: %v\n", a.Name, p.ImportPath, err)
				return 2
			}
			elapsed[a.Name] += time.Since(t0)
		}
	}

	if stats {
		// Stats go to stdout so CI can append them to the job summary while
		// findings stay on stderr.
		fmt.Printf("%-12s %8s %12s\n", "analyzer", "findings", "wall")
		for _, a := range lint.All() {
			fmt.Printf("%-12s %8d %12s\n", a.Name, counts[a.Name], elapsed[a.Name].Round(time.Microsecond))
		}
	}
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].fset.Position(findings[i].diag.Pos), findings[j].fset.Position(findings[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.fset.Position(f.diag.Pos), f.analyzer, f.diag.Message)
	}
	if fix {
		var diags []analysis.Diagnostic
		for _, f := range findings {
			diags = append(diags, f.diag)
		}
		edits := fixer.Collect(findings[0].fset, diags)
		switch {
		case len(edits) == 0:
			fmt.Fprintln(os.Stderr, "muzzlelint: no suggested fixes to apply")
		case write:
			applied, files, err := fixer.Apply(edits)
			if err != nil {
				fmt.Fprintln(os.Stderr, "muzzlelint: applying fixes:", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "muzzlelint: applied %d fix edit(s) across %d file(s)\n", applied, files)
		default:
			if err := fixer.Diff(os.Stderr, edits); err != nil {
				fmt.Fprintln(os.Stderr, "muzzlelint: rendering fix diff:", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "muzzlelint: %d fix edit(s) available; rerun with -fix -w to apply\n", len(edits))
		}
	}
	return 1
}

// vetConfig is the subset of vet's unitchecker .cfg file we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package the way `go vet -vettool` drives it.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}
	// The driver requires the facts file to exist even though this suite
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "muzzlelint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "muzzlelint:", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}

	// Single-unit call graph: only this package's bodies are visible, so
	// the interprocedural analyzers check what they can see and skip
	// cross-package propagation (documented degradation of vet mode).
	prog := callgraph.Build(fset, []*callgraph.Unit{{Fset: fset, Files: files, Pkg: pkg, Info: info}})

	exit := 0
	for _, a := range lint.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Program:   prog,
		}
		pass.Report = func(d analysis.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "muzzlelint: %s: %v\n", a.Name, err)
			return 2
		}
	}
	return exit
}
