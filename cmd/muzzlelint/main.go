// Command muzzlelint runs the repo's custom analyzer suite (internal/lint)
// over Go packages. Two modes:
//
// Standalone, for CI and local use:
//
//	go run ./cmd/muzzlelint ./...
//	go run ./cmd/muzzlelint -fix ./internal/service
//
// As a vet tool, which lets `go vet` drive it incrementally through the
// build cache using the unitchecker protocol (-V=full handshake, -flags
// enumeration, then one .cfg file per package):
//
//	go build -o muzzlelint ./cmd/muzzlelint
//	go vet -vettool=$PWD/muzzlelint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"muzzle/internal/lint"
	"muzzle/internal/lint/analysis"
	"muzzle/internal/lint/load"
)

func main() {
	// The vet handshake comes before flag parsing: vet probes the tool's
	// identity with -V=full and its flag set with -flags.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" {
			// Hex suffix doubles as the protocol's cache-busting build ID.
			fmt.Printf("%s version devel comments-go-here buildID=muzzlelint-1\n", os.Args[0])
			return
		}
		if arg == "-flags" {
			// Flags vet is allowed to forward to us.
			fmt.Println(`[{"Name":"fix","Bool":true,"Usage":"apply suggested fixes"}]`)
			return
		}
	}

	fix := flag.Bool("fix", false, "apply suggested fixes to source files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: muzzlelint [-fix] <packages>\n       muzzlelint <package>.cfg  (vet unitchecker mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, *fix))
}

// finding pairs a diagnostic with the package whose pass produced it so
// fixes can be applied and output ordered globally.
type finding struct {
	analyzer string
	fset     *token.FileSet
	diag     analysis.Diagnostic
}

func standalone(patterns []string, fix bool) int {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}
	var findings []finding
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "muzzlelint: %s: %v\n", p.ImportPath, e)
			}
			return 2
		}
		for _, a := range lint.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{a.Name, p.Fset, d})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "muzzlelint: %s: %s: %v\n", a.Name, p.ImportPath, err)
				return 2
			}
		}
	}
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].fset.Position(findings[i].diag.Pos), findings[j].fset.Position(findings[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.fset.Position(f.diag.Pos), f.analyzer, f.diag.Message)
	}
	if fix {
		if err := applyFixes(findings); err != nil {
			fmt.Fprintln(os.Stderr, "muzzlelint: applying fixes:", err)
			return 2
		}
	}
	return 1
}

// applyFixes rewrites source files with each finding's first suggested
// fix, applying edits per file from the end backward so earlier offsets
// stay valid. Overlapping edits are skipped.
func applyFixes(findings []finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range f.diag.SuggestedFixes[0].TextEdits {
			pos := f.fset.Position(te.Pos)
			end := pos.Offset
			if te.End.IsValid() {
				end = f.fset.Position(te.End).Offset
			}
			perFile[pos.Filename] = append(perFile[pos.Filename], edit{pos.Offset, end, te.NewText})
		}
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev || e.end > len(src) {
				continue // overlapping or stale edit
			}
			src = append(src[:e.start], append(e.text, src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "muzzlelint: fixed %s\n", file)
	}
	return nil
}

// vetConfig is the subset of vet's unitchecker .cfg file we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package the way `go vet -vettool` drives it.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}
	// The driver requires the facts file to exist even though this suite
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "muzzlelint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "muzzlelint:", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "muzzlelint:", err)
		return 2
	}

	exit := 0
	for _, a := range lint.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 2
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "muzzlelint: %s: %v\n", a.Name, err)
			return 2
		}
	}
	return exit
}
