// Command muzzlesweep runs a declarative scenario sweep — topology family
// x trap capacity x compiler set x circuit family — through the muzzle
// compilation pipeline and writes deterministic JSON/CSV artifacts plus a
// resumable manifest: re-running an interrupted sweep in the same output
// directory executes only the unfinished cells, and re-running a finished
// sweep reproduces report.json byte for byte.
//
// Usage:
//
//	muzzlesweep -grid grid.json [flags]
//	muzzlesweep -topo line:6,ring:6,grid:2x3 -circuits qft:16 [flags]
//	muzzlesweep -server http://host:8077 -circuits qft:16 [flags]
//
// Flags:
//
//	-grid FILE        grid spec as JSON (see README); overrides the axis flags
//	-topo LIST        topology axis: line:N | ring:N | grid:RxC (comma separated)
//	-capacities LIST  trap capacity axis (default 17)
//	-comm LIST        communication capacity axis (default 2)
//	-compilers LIST   registry compiler set (default baseline,optimized)
//	-circuits LIST    circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT]
//	-out DIR          artifact directory (default sweep-out)
//	-server URL       submit the sweep to a muzzled daemon instead of running
//	                  locally; admission backpressure (429 + Retry-After) is
//	                  honored with jittered backoff, and report.json/report.csv
//	                  are written under -out from the daemon's result
//	-parallelism N    concurrent cells (0 = one per CPU; local runs only)
//	-cache N          in-memory compile-cache entries (default 4096; 0 disables)
//	-cache-dir DIR    persist cache entries as JSON under DIR (shared across runs)
//	-cache-disk N     max persisted files under -cache-dir (0 = unbounded)
//	-timeout D        abort the sweep after this duration (0 = none)
//	-q                suppress per-cell progress lines
//	-verify           replay every schedule through the independent
//	                  machine-model verifier; violations fail the cell
//
// Artifacts under -out: report.json (the aggregated deterministic report),
// report.csv (one row per cell x compiler), manifest.json and cells/ (the
// resume state; local runs only — for resumable distributed runs, see
// muzzlecoord).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"muzzle"
	"muzzle/internal/coord"
	"muzzle/internal/service"
	"muzzle/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzlesweep:", err)
		os.Exit(1)
	}
}

func run() error {
	gridFile := flag.String("grid", "", "grid spec JSON file (overrides the axis flags)")
	topoList := flag.String("topo", "line:6", "topology axis: line:N | ring:N | grid:RxC, comma separated")
	capList := flag.String("capacities", "17", "trap capacity axis, comma separated")
	commList := flag.String("comm", "2", "communication capacity axis, comma separated")
	compilers := flag.String("compilers", "", "compiler set (default baseline,optimized)")
	circuits := flag.String("circuits", "qft:16", "circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT], comma separated")
	out := flag.String("out", "sweep-out", "artifact directory (resumable)")
	server := flag.String("server", "", "submit to a muzzled daemon at this base URL instead of running locally")
	parallelism := flag.Int("parallelism", 0, "concurrent cells (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 4096, "in-memory compile-cache entries (0 disables caching)")
	cacheDir := flag.String("cache-dir", "", "persist compile-cache entries under this directory")
	cacheDisk := flag.Int("cache-disk", 0, "max persisted cache files under -cache-dir (0 = unbounded)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-cell progress lines")
	verifyFlag := flag.Bool("verify", false, "replay every schedule through the independent verifier; violations fail the cell")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", flag.Arg(0))
	}

	var grid sweep.Grid
	if *gridFile != "" {
		f, err := os.Open(*gridFile)
		if err != nil {
			return err
		}
		err = sweep.DecodeGrid(f, &grid)
		f.Close()
		if err != nil {
			return fmt.Errorf("grid %s: %w", *gridFile, err)
		}
	} else {
		var err error
		grid, err = sweep.GridFromFlags(*topoList, *capList, *commList, *compilers, *circuits)
		if err != nil {
			return err
		}
	}

	// Expand once: validation happens before any output directory is
	// touched, so a typo'd grid never creates a half-initialized artifact
	// dir, and the normalized grid (defaults materialized) is what runs
	// and gets reported.
	exp, err := sweep.Expand(grid)
	if err != nil {
		return err
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// SIGINT/SIGTERM is an orderly stop: completed cells are already
	// persisted (locally under -out, remotely daemon-side), so exit 0 and
	// let a re-run resume. A -timeout abort stays an error.
	graceful := func(err error) bool {
		return sigCtx.Err() != nil && errors.Is(err, context.Canceled)
	}

	if *server != "" {
		if err := runRemote(ctx, *server, grid, *out, *verifyFlag, *quiet); err != nil {
			if graceful(err) {
				fmt.Println("interrupted: sweep canceled daemon-side; resubmit to start over, or query the daemon for partial results")
				return nil
			}
			return err
		}
		return nil
	}

	var cache *muzzle.Cache
	if *cacheEntries > 0 {
		cache, err = muzzle.NewCache(muzzle.CacheConfig{MaxEntries: *cacheEntries, Dir: *cacheDir, MaxDiskEntries: *cacheDisk})
		if err != nil {
			return err
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir requires caching enabled (-cache > 0)")
	}

	fmt.Printf("sweep: %d cells (%d topologies x %d capacities x %d comm x circuits), compilers %v\n",
		len(exp.Cells), len(exp.Grid.Topologies), len(exp.Grid.Capacities),
		len(exp.Grid.CommCapacities), exp.Grid.Compilers)

	// A sweep-wide flight group: a grid with overlapping coordinates (the
	// same circuit under machine points that hash identically) coalesces
	// concurrent duplicate cells instead of relying on cell ordering to
	// serialize them through the cache.
	opt := sweep.Options{Parallelism: *parallelism, Cache: cache, Flight: muzzle.NewFlight(), Verify: *verifyFlag}
	if !*quiet {
		opt.OnCell = printCell
	}

	rep, err := exp.RunDir(ctx, *out, opt)
	if err != nil {
		if graceful(err) {
			done := 0
			for _, cr := range rep.Cells {
				if cr.Error == "" {
					done++
				}
			}
			fmt.Printf("interrupted: %d of %d cells persisted under %s; re-run with the same flags to resume\n",
				done, len(rep.Cells), *out)
			return nil
		}
		return err
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Printf("cache: %d hits, %d misses (%d served from disk)\n", s.Hits, s.Misses, s.DiskHits)
	}
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see %s/report.json)", n, len(rep.Cells), *out)
	}
	fmt.Printf("done: %d cells -> %s/report.json, %s/report.csv\n", len(rep.Cells), *out, *out)
	return nil
}

// printCell is the per-cell progress line shared by local and remote runs.
func printCell(cr sweep.CellReport) {
	if cr.Error != "" {
		fmt.Printf("%-48s ERROR: %s\n", cr.ID, cr.Error)
		return
	}
	var parts []string
	for _, o := range cr.Outcomes {
		parts = append(parts, fmt.Sprintf("%s=%d", o.Compiler, o.Shuttles))
	}
	fmt.Printf("%-48s shuttles: %s\n", cr.ID, strings.Join(parts, " "))
}

// runRemote submits the grid to a muzzled daemon (POST /v1/sweeps), riding
// out admission backpressure — a 429 is an invitation to retry after the
// daemon's own Retry-After estimate, not a failure — then polls the job to
// completion and writes report.json/report.csv under outDir.
func runRemote(ctx context.Context, base string, g sweep.Grid, outDir string, verify, quiet bool) error {
	if verify {
		// The per-sweep verify knob is daemon-side (-verify); the sweep
		// grid itself carries no verify field.
		fmt.Fprintln(os.Stderr, "muzzlesweep: note: -verify with -server requires the daemon to run with -verify")
	}
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(g)
	if err != nil {
		return err
	}

	client := &http.Client{}
	var view service.JobView
	backoff := coord.Backoff{}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweeps", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := backoff.Delay(attempt, coord.RetryAfter(resp.Header))
			fmt.Printf("daemon at capacity (429), retrying in %s\n", delay.Round(time.Millisecond))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		if err := json.Unmarshal(raw, &view); err != nil {
			return fmt.Errorf("submit: decode response: %w", err)
		}
		break
	}
	fmt.Printf("sweep %s submitted (%d cells)\n", view.ID, view.CircuitsTotal)

	rep, err := pollSweep(ctx, client, base, view.ID, quiet)
	if err != nil {
		return err
	}
	if err := writeRemoteReports(outDir, rep); err != nil {
		return err
	}
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see %s/report.json)", n, len(rep.Cells), outDir)
	}
	fmt.Printf("done: %d cells -> %s/report.json, %s/report.csv\n", len(rep.Cells), outDir, outDir)
	return nil
}

// pollSweep polls the sweep job until it is terminal; on interrupt it
// cancels the job daemon-side before returning.
func pollSweep(ctx context.Context, client *http.Client, base, id string, quiet bool) (*sweep.Report, error) {
	lastDone := 0
	for {
		select {
		case <-ctx.Done():
			// Best effort: don't leave the daemon computing a sweep nobody
			// will read.
			req, err := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+id, nil)
			if err == nil {
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			return nil, ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/sweeps/"+id, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		var view service.JobView
		err = json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("poll: %w", err)
		}
		if !quiet && view.CircuitsDone != lastDone {
			fmt.Printf("progress: %d/%d cells\n", view.CircuitsDone, view.CircuitsTotal)
			lastDone = view.CircuitsDone
		}
		if !view.State.Terminal() {
			continue
		}
		if view.Sweep == nil {
			return nil, fmt.Errorf("sweep %s %s: %s", id, view.State, view.Error)
		}
		if view.State != service.StateDone {
			return view.Sweep, fmt.Errorf("sweep %s %s: %s", id, view.State, view.Error)
		}
		return view.Sweep, nil
	}
}

// writeRemoteReports writes report.json/report.csv from a daemon-computed
// report, atomically, matching the local artifact layout.
func writeRemoteReports(dir string, rep *sweep.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var jb, cb bytes.Buffer
	if err := sweep.WriteJSON(&jb, rep); err != nil {
		return err
	}
	if err := sweep.WriteCSV(&cb, rep); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "report.json"), jb.Bytes()); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, "report.csv"), cb.Bytes())
}

func writeFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
