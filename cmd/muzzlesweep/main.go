// Command muzzlesweep runs a declarative scenario sweep — topology family
// x trap capacity x compiler set x circuit family — through the muzzle
// compilation pipeline and writes deterministic JSON/CSV artifacts plus a
// resumable manifest: re-running an interrupted sweep in the same output
// directory executes only the unfinished cells, and re-running a finished
// sweep reproduces report.json byte for byte.
//
// Usage:
//
//	muzzlesweep -grid grid.json [flags]
//	muzzlesweep -topo line:6,ring:6,grid:2x3 -circuits qft:16 [flags]
//
// Flags:
//
//	-grid FILE        grid spec as JSON (see README); overrides the axis flags
//	-topo LIST        topology axis: line:N | ring:N | grid:RxC (comma separated)
//	-capacities LIST  trap capacity axis (default 17)
//	-comm LIST        communication capacity axis (default 2)
//	-compilers LIST   registry compiler set (default baseline,optimized)
//	-circuits LIST    circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT]
//	-out DIR          artifact directory (default sweep-out)
//	-parallelism N    concurrent cells (0 = one per CPU)
//	-cache N          in-memory compile-cache entries (default 4096; 0 disables)
//	-cache-dir DIR    persist cache entries as JSON under DIR (shared across runs)
//	-cache-disk N     max persisted files under -cache-dir (0 = unbounded)
//	-timeout D        abort the sweep after this duration (0 = none)
//	-q                suppress per-cell progress lines
//	-verify           replay every schedule through the independent
//	                  machine-model verifier; violations fail the cell
//
// Artifacts under -out: report.json (the aggregated deterministic report),
// report.csv (one row per cell x compiler), manifest.json and cells/ (the
// resume state).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"muzzle"
	"muzzle/internal/sweep"
)

// decodeGrid strictly decodes one JSON grid object: unknown fields and
// trailing data are errors, matching the daemon's POST /v1/sweeps.
func decodeGrid(r io.Reader, g *sweep.Grid) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(g); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after grid object")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzlesweep:", err)
		os.Exit(1)
	}
}

func run() error {
	gridFile := flag.String("grid", "", "grid spec JSON file (overrides the axis flags)")
	topoList := flag.String("topo", "line:6", "topology axis: line:N | ring:N | grid:RxC, comma separated")
	capList := flag.String("capacities", "17", "trap capacity axis, comma separated")
	commList := flag.String("comm", "2", "communication capacity axis, comma separated")
	compilers := flag.String("compilers", "", "compiler set (default baseline,optimized)")
	circuits := flag.String("circuits", "qft:16", "circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT], comma separated")
	out := flag.String("out", "sweep-out", "artifact directory (resumable)")
	parallelism := flag.Int("parallelism", 0, "concurrent cells (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 4096, "in-memory compile-cache entries (0 disables caching)")
	cacheDir := flag.String("cache-dir", "", "persist compile-cache entries under this directory")
	cacheDisk := flag.Int("cache-disk", 0, "max persisted cache files under -cache-dir (0 = unbounded)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-cell progress lines")
	verifyFlag := flag.Bool("verify", false, "replay every schedule through the independent verifier; violations fail the cell")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", flag.Arg(0))
	}

	var grid sweep.Grid
	if *gridFile != "" {
		f, err := os.Open(*gridFile)
		if err != nil {
			return err
		}
		err = decodeGrid(f, &grid)
		f.Close()
		if err != nil {
			return fmt.Errorf("grid %s: %w", *gridFile, err)
		}
	} else {
		var err error
		grid, err = gridFromFlags(*topoList, *capList, *commList, *compilers, *circuits)
		if err != nil {
			return err
		}
	}

	var cache *muzzle.Cache
	if *cacheEntries > 0 {
		var err error
		cache, err = muzzle.NewCache(muzzle.CacheConfig{MaxEntries: *cacheEntries, Dir: *cacheDir, MaxDiskEntries: *cacheDisk})
		if err != nil {
			return err
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir requires caching enabled (-cache > 0)")
	}

	// Expand once: validation happens before any output directory is
	// touched, so a typo'd grid never creates a half-initialized artifact
	// dir, and the normalized grid (defaults materialized) is what runs
	// and gets reported.
	exp, err := sweep.Expand(grid)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Printf("sweep: %d cells (%d topologies x %d capacities x %d comm x circuits), compilers %v\n",
		len(exp.Cells), len(exp.Grid.Topologies), len(exp.Grid.Capacities),
		len(exp.Grid.CommCapacities), exp.Grid.Compilers)

	// A sweep-wide flight group: a grid with overlapping coordinates (the
	// same circuit under machine points that hash identically) coalesces
	// concurrent duplicate cells instead of relying on cell ordering to
	// serialize them through the cache.
	opt := sweep.Options{Parallelism: *parallelism, Cache: cache, Flight: muzzle.NewFlight(), Verify: *verifyFlag}
	if !*quiet {
		opt.OnCell = func(cr sweep.CellReport) {
			if cr.Error != "" {
				fmt.Printf("%-48s ERROR: %s\n", cr.ID, cr.Error)
				return
			}
			var parts []string
			for _, o := range cr.Outcomes {
				parts = append(parts, fmt.Sprintf("%s=%d", o.Compiler, o.Shuttles))
			}
			fmt.Printf("%-48s shuttles: %s\n", cr.ID, strings.Join(parts, " "))
		}
	}

	rep, err := exp.RunDir(ctx, *out, opt)
	if err != nil {
		return err
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Printf("cache: %d hits, %d misses (%d served from disk)\n", s.Hits, s.Misses, s.DiskHits)
	}
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see %s/report.json)", n, len(rep.Cells), *out)
	}
	fmt.Printf("done: %d cells -> %s/report.json, %s/report.csv\n", len(rep.Cells), *out, *out)
	return nil
}

// gridFromFlags synthesizes a Grid from the comma-separated axis flags.
func gridFromFlags(topoList, capList, commList, compilers, circuits string) (sweep.Grid, error) {
	var g sweep.Grid
	for _, spec := range splitList(topoList) {
		ts, err := parseTopoFlag(spec)
		if err != nil {
			return g, err
		}
		g.Topologies = append(g.Topologies, ts)
	}
	var err error
	if g.Capacities, err = parseIntList("-capacities", capList); err != nil {
		return g, err
	}
	if g.CommCapacities, err = parseIntList("-comm", commList); err != nil {
		return g, err
	}
	if compilers != "" {
		g.Compilers = splitList(compilers)
	}
	for _, spec := range splitList(circuits) {
		cs, err := parseCircuitFlag(spec)
		if err != nil {
			return g, err
		}
		g.Circuits = append(g.Circuits, cs)
	}
	return g, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseTopoFlag parses line:N, ring:N, or grid:RxC.
func parseTopoFlag(s string) (sweep.TopologySpec, error) {
	family, arg, ok := strings.Cut(s, ":")
	if !ok {
		return sweep.TopologySpec{}, fmt.Errorf("-topo: %q should be line:N, ring:N, or grid:RxC", s)
	}
	switch family {
	case sweep.FamilyLine, sweep.FamilyRing:
		n, err := strconv.Atoi(arg)
		if err != nil {
			return sweep.TopologySpec{}, fmt.Errorf("-topo: bad trap count in %q", s)
		}
		return sweep.TopologySpec{Family: family, Traps: n}, nil
	case sweep.FamilyGrid:
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return sweep.TopologySpec{}, fmt.Errorf("-topo: grid wants RxC, got %q", s)
		}
		rows, err1 := strconv.Atoi(rs)
		cols, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil {
			return sweep.TopologySpec{}, fmt.Errorf("-topo: bad grid dimensions in %q", s)
		}
		return sweep.TopologySpec{Family: family, Rows: rows, Cols: cols}, nil
	default:
		return sweep.TopologySpec{}, fmt.Errorf("-topo: unknown family %q (custom topologies need -grid)", family)
	}
}

// parseCircuitFlag parses paper, qft:N, or random:Q:G:SEED[:COUNT].
func parseCircuitFlag(s string) (sweep.CircuitSpec, error) {
	kind, rest, _ := strings.Cut(s, ":")
	switch kind {
	case sweep.CircuitPaper:
		if rest != "" {
			return sweep.CircuitSpec{}, fmt.Errorf("-circuits: paper takes no arguments, got %q", s)
		}
		return sweep.CircuitSpec{Kind: kind}, nil
	case sweep.CircuitQFT:
		n, err := strconv.Atoi(rest)
		if err != nil {
			return sweep.CircuitSpec{}, fmt.Errorf("-circuits: qft wants qft:N, got %q", s)
		}
		return sweep.CircuitSpec{Kind: kind, Qubits: n}, nil
	case sweep.CircuitRandom:
		parts := strings.Split(rest, ":")
		if len(parts) != 3 && len(parts) != 4 {
			return sweep.CircuitSpec{}, fmt.Errorf("-circuits: random wants random:Q:G:SEED[:COUNT], got %q", s)
		}
		nums := make([]int64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return sweep.CircuitSpec{}, fmt.Errorf("-circuits: bad number %q in %q", p, s)
			}
			nums[i] = v
		}
		spec := sweep.CircuitSpec{Kind: kind, Qubits: int(nums[0]), Gates2Q: int(nums[1]), Seed: nums[2]}
		if len(nums) == 4 {
			spec.Count = int(nums[3])
		}
		return spec, nil
	default:
		return sweep.CircuitSpec{}, fmt.Errorf("-circuits: unknown kind %q (want paper, qft:N, random:Q:G:SEED[:COUNT])", kind)
	}
}
