// Command benchgen emits the paper's benchmark suite as OpenQASM 2.0 files:
// the five NISQ benchmarks of Table II and (optionally) the 120-circuit
// random suite.
//
// Usage:
//
//	benchgen [-out DIR] [-random] [-verify]
//
// With -verify, each emitted NISQ file is parsed back and compiled through
// a Pipeline on the paper's machine — an end-to-end check that the files
// round-trip and schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"muzzle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "benchmarks", "output directory")
	includeRandom := flag.Bool("random", false, "also emit the 120-circuit random suite")
	verify := flag.Bool("verify", false, "parse each NISQ file back and compile it on the paper's machine")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var p *muzzle.Pipeline
	if *verify {
		var err error
		if p, err = muzzle.NewPipeline(); err != nil {
			return err
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, spec := range muzzle.Benchmarks() {
		c := spec.Build()
		path := filepath.Join(*out, spec.Name+".qasm")
		if err := muzzle.WriteQASMFile(path, c); err != nil {
			return err
		}
		fmt.Printf("%-40s %3d qubits %5d 2Q gates\n", path, spec.Qubits, spec.Gates2Q)
		if p != nil {
			parsed, err := muzzle.ParseQASMFile(path)
			if err != nil {
				return fmt.Errorf("verify %s: %w", path, err)
			}
			res, err := p.Compile(ctx, parsed)
			if err != nil {
				return fmt.Errorf("verify %s: %w", path, err)
			}
			fmt.Printf("%-40s verified: %d shuttles in %v\n", path, res.Shuttles, res.CompileTime)
		}
	}
	if *includeRandom {
		dir := filepath.Join(*out, "random")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		suite := muzzle.RandomSuiteCircuits(muzzle.DefaultRandomSuiteParams())
		for i, c := range suite {
			path := filepath.Join(dir, fmt.Sprintf("random_%03d.qasm", i))
			if err := muzzle.WriteQASMFile(path, c); err != nil {
				return err
			}
		}
		fmt.Printf("%s: %d random circuits written\n", dir, len(suite))
	}
	return nil
}
