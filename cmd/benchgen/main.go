// Command benchgen emits the paper's benchmark suite as OpenQASM 2.0 files:
// the five NISQ benchmarks of Table II and (optionally) the 120-circuit
// random suite.
//
// Usage:
//
//	benchgen [-out DIR] [-random]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"muzzle"
	"muzzle/internal/bench"
	"muzzle/internal/qasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "benchmarks", "output directory")
	includeRandom := flag.Bool("random", false, "also emit the 120-circuit random suite")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, spec := range muzzle.Benchmarks() {
		c := spec.Build()
		path := filepath.Join(*out, spec.Name+".qasm")
		if err := qasm.WriteFile(path, c); err != nil {
			return err
		}
		fmt.Printf("%-40s %3d qubits %5d 2Q gates\n", path, spec.Qubits, spec.Gates2Q)
	}
	if *includeRandom {
		dir := filepath.Join(*out, "random")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, c := range bench.RandomSuite(bench.DefaultRandomSuiteParams()) {
			path := filepath.Join(dir, fmt.Sprintf("random_%03d.qasm", i))
			if err := qasm.WriteFile(path, c); err != nil {
				return err
			}
		}
		fmt.Printf("%s: 120 random circuits written\n", dir)
	}
	return nil
}
