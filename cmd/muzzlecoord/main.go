// Command muzzlecoord runs a scenario sweep across a fleet of muzzled
// workers: it expands the grid exactly as muzzlesweep would, fans the
// indexed cell list out over HTTP (POST /v1/cells) with health probing,
// backpressure-aware dispatch, and failure reassignment, and merges the
// results into the same resumable artifact directory a local run writes —
// a distributed run dir can be finished (or re-read) by muzzlesweep and
// vice versa.
//
// Point every worker's -cache-dir at one shared directory: the
// content-addressed compile cache then acts as the fleet's shared blob
// store, so overlapping cells — including cells re-dispatched after a
// worker died mid-flight — cost one compile total.
//
// Usage:
//
//	muzzlecoord -workers http://a:8077,http://b:8077 [flags]
//
// Flags:
//
//	-workers LIST     muzzled base URLs, comma separated (required)
//	-grid FILE        grid spec as JSON (see README); overrides the axis flags
//	-topo LIST        topology axis: line:N | ring:N | grid:RxC (comma separated)
//	-capacities LIST  trap capacity axis (default 17)
//	-comm LIST        communication capacity axis (default 2)
//	-compilers LIST   registry compiler set (default baseline,optimized)
//	-circuits LIST    circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT]
//	-out DIR          resumable artifact directory (default sweep-out)
//	-cell-timeout D   per-dispatch-attempt deadline for one cell (default 10m)
//	-max-attempts N   failed-dispatch budget per cell before the cell is
//	                  recorded as failed (default 3); 429 retries are free
//	-per-worker N     concurrent cells per worker (0 = the worker pool size
//	                  its /healthz advertises)
//	-probe-interval D health re-probe cadence for unhealthy workers (default 2s)
//	-no-worker-timeout D  abort after the whole fleet has been unhealthy this
//	                  long (default 1m)
//	-metrics ADDR     serve coordinator /metrics + /healthz on ADDR (empty
//	                  disables)
//	-timeout D        abort the sweep after this duration (0 = none)
//	-q                suppress per-cell progress lines
//	-verify           ask workers to replay every schedule through the
//	                  independent machine-model verifier
//
// Artifacts under -out are identical to muzzlesweep's: report.json,
// report.csv, manifest.json, and cells/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"muzzle/internal/coord"
	"muzzle/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzlecoord:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := flag.String("workers", "", "muzzled base URLs, comma separated (required)")
	gridFile := flag.String("grid", "", "grid spec JSON file (overrides the axis flags)")
	topoList := flag.String("topo", "line:6", "topology axis: line:N | ring:N | grid:RxC, comma separated")
	capList := flag.String("capacities", "17", "trap capacity axis, comma separated")
	commList := flag.String("comm", "2", "communication capacity axis, comma separated")
	compilers := flag.String("compilers", "", "compiler set (default baseline,optimized)")
	circuits := flag.String("circuits", "qft:16", "circuit axis: paper | qft:N | random:Q:G:SEED[:COUNT], comma separated")
	out := flag.String("out", "sweep-out", "artifact directory (resumable)")
	cellTimeout := flag.Duration("cell-timeout", 10*time.Minute, "per-dispatch-attempt deadline for one cell")
	maxAttempts := flag.Int("max-attempts", 3, "failed-dispatch budget per cell (429 backpressure retries are free)")
	perWorker := flag.Int("per-worker", 0, "concurrent cells per worker (0 = the pool size its /healthz advertises)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health re-probe cadence for unhealthy workers")
	noWorkerTimeout := flag.Duration("no-worker-timeout", time.Minute, "abort after the whole fleet has been unhealthy this long")
	metricsAddr := flag.String("metrics", "", "serve coordinator /metrics + /healthz on this address (empty disables)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-cell progress lines")
	verify := flag.Bool("verify", false, "ask workers to verify every schedule against the machine model")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (flags only)", flag.Arg(0))
	}
	urls := sweep.SplitList(*workers)
	if len(urls) == 0 {
		return fmt.Errorf("-workers is required (comma-separated muzzled base URLs)")
	}

	var grid sweep.Grid
	if *gridFile != "" {
		f, err := os.Open(*gridFile)
		if err != nil {
			return err
		}
		err = sweep.DecodeGrid(f, &grid)
		f.Close()
		if err != nil {
			return fmt.Errorf("grid %s: %w", *gridFile, err)
		}
	} else {
		var err error
		grid, err = sweep.GridFromFlags(*topoList, *capList, *commList, *compilers, *circuits)
		if err != nil {
			return err
		}
	}
	// Expand once up front so a typo'd grid fails before the output
	// directory or any worker is touched; the coordinator re-expands the
	// same normalized grid internally.
	exp, err := sweep.Expand(grid)
	if err != nil {
		return err
	}

	cfg := coord.Config{
		Workers:           urls,
		CellTimeout:       *cellTimeout,
		MaxAttempts:       *maxAttempts,
		PerWorkerInFlight: *perWorker,
		ProbeInterval:     *probeInterval,
		NoWorkerTimeout:   *noWorkerTimeout,
		Verify:            *verify,
		Logf:              log.Printf,
	}
	if !*quiet {
		cfg.OnCell = func(cr sweep.CellReport) {
			if cr.Error != "" {
				fmt.Printf("%-48s ERROR: %s\n", cr.ID, cr.Error)
				return
			}
			var parts []string
			for _, o := range cr.Outcomes {
				parts = append(parts, fmt.Sprintf("%s=%d", o.Compiler, o.Shuttles))
			}
			fmt.Printf("%-48s shuttles: %s\n", cr.ID, strings.Join(parts, " "))
		}
	}
	c, err := coord.New(cfg)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		go func() {
			log.Printf("coordinator metrics on %s", *metricsAddr)
			srv := &http.Server{Addr: *metricsAddr, Handler: c.Handler(), ReadHeaderTimeout: 10 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Printf("sweep: %d cells across %d workers (%d topologies x %d capacities x %d comm x circuits), compilers %v\n",
		len(exp.Cells), len(urls), len(exp.Grid.Topologies), len(exp.Grid.Capacities),
		len(exp.Grid.CommCapacities), exp.Grid.Compilers)

	rep, err := c.RunDir(ctx, grid, *out)
	if err != nil {
		// SIGINT/SIGTERM is an orderly stop, not a failure: every completed
		// cell was already persisted under -out as it finished, so a re-run
		// with the same flags resumes from exactly where this one stopped.
		// Only the signal path exits 0 — a -timeout abort stays an error.
		if sigCtx.Err() != nil && errors.Is(err, context.Canceled) {
			done := 0
			for _, cr := range rep.Cells {
				if cr.Error == "" {
					done++
				}
			}
			fmt.Printf("interrupted: %d of %d cells persisted under %s; re-run with the same flags to resume\n",
				done, len(rep.Cells), *out)
			return nil
		}
		return err
	}
	met := c.MetricsSnapshot()
	fmt.Printf("dispatch: %d completed, %d backpressure retries, %d reassigned, %d failed\n",
		met.Completed, met.Retried, met.Reassigned, met.Failed)
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see %s/report.json)", n, len(rep.Cells), *out)
	}
	fmt.Printf("done: %d cells -> %s/report.json, %s/report.csv\n", len(rep.Cells), *out, *out)
	return nil
}
