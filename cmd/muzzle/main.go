// Command muzzle compiles an OpenQASM 2.0 circuit for a multi-trap
// trapped-ion machine and reports shuttle statistics, optionally comparing
// the paper's optimized compiler against the QCCDSim-style baseline and
// exporting the schedule.
//
// Usage:
//
//	muzzle [flags] circuit.qasm
//
// Flags:
//
//	-traps N        number of traps in the linear topology (default 6)
//	-capacity N     total trap capacity (default 17)
//	-comm N         communication capacity (default 2)
//	-compiler NAME  "optimized" (default), "baseline", or "both"
//	-proximity N    future-ops proximity window (default 6; -1 unbounded)
//	-json FILE      write the optimized schedule as JSON
//	-render         print trap-occupancy snapshots
//	-sim            simulate and print duration/fidelity
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"muzzle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzle:", err)
		os.Exit(1)
	}
}

func run() error {
	traps := flag.Int("traps", 6, "number of traps in the linear topology")
	capacity := flag.Int("capacity", 17, "total trap capacity")
	comm := flag.Int("comm", 2, "communication capacity")
	which := flag.String("compiler", "optimized", `compiler: "optimized", "baseline", or "both"`)
	proximity := flag.Int("proximity", 0, "future-ops proximity window (0 = paper default 6, -1 = unbounded)")
	jsonPath := flag.String("json", "", "write the compiled schedule as JSON to this file")
	svgPath := flag.String("svg", "", "write a trap x time Gantt chart SVG to this file")
	render := flag.Bool("render", false, "print trap-occupancy snapshots")
	simulate := flag.Bool("sim", false, "simulate and print duration/fidelity")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one QASM file, got %d args", flag.NArg())
	}
	c, err := muzzle.ParseQASMFile(flag.Arg(0))
	if err != nil {
		return err
	}
	cfg := muzzle.LinearMachine(*traps, *capacity, *comm)
	fmt.Printf("circuit %s: %d qubits, %d gates (%d two-qubit)\n",
		c.Name, c.NumQubits, len(c.Gates), c.Count2Q())

	report := func(label string, comp *muzzle.Compiler) (*muzzle.CompileResult, error) {
		res, err := comp.Compile(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("%-10s shuttles=%d swaps=%d reorders=%d rebalances=%d compile=%v (direction=%s)\n",
			label, res.Shuttles, res.Swaps, res.Reorders, res.Rebalances,
			res.CompileTime.Round(time.Microsecond), res.DirectionPolicy)
		if *simulate {
			rep, err := muzzle.Simulate(res)
			if err != nil {
				return nil, err
			}
			fmt.Printf("%-10s duration=%.1fus logFidelity=%.4f fidelity=%.3g maxChainN=%.2f\n",
				label, rep.Duration, rep.LogFidelity, rep.Fidelity, rep.MaxChainN)
		}
		return res, nil
	}

	var opt *muzzle.CompileResult
	switch *which {
	case "optimized":
		opt, err = report("optimized", muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{Proximity: *proximity}))
	case "baseline":
		opt, err = report("baseline", muzzle.NewBaselineCompiler())
	case "both":
		var base *muzzle.CompileResult
		base, err = report("baseline", muzzle.NewBaselineCompiler())
		if err != nil {
			return err
		}
		opt, err = report("optimized", muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{Proximity: *proximity}))
		if err == nil && base.Shuttles > 0 {
			fmt.Printf("reduction: %d shuttles (%.2f%%)\n",
				base.Shuttles-opt.Shuttles,
				100*float64(base.Shuttles-opt.Shuttles)/float64(base.Shuttles))
		}
	default:
		return fmt.Errorf("unknown -compiler %q", *which)
	}
	if err != nil {
		return err
	}

	if *render {
		if err := muzzle.RenderTrace(os.Stdout, opt); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := muzzle.WriteTraceJSON(f, opt); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", *jsonPath)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := muzzle.WriteScheduleSVG(f, opt); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s\n", *svgPath)
	}
	return nil
}
