// Command muzzle compiles an OpenQASM 2.0 circuit for a multi-trap
// trapped-ion machine and reports shuttle statistics, comparing any set of
// registered compilers and optionally exporting the schedule.
//
// Usage:
//
//	muzzle [flags] circuit.qasm
//
// Flags:
//
//	-traps N        number of traps in the linear topology (default 6)
//	-capacity N     total trap capacity (default 17)
//	-comm N         communication capacity (default 2)
//	-compilers CSV  comma-separated registry names (default "optimized";
//	                "baseline,optimized" compares the paper's pair)
//	-proximity N    future-ops proximity window (default 6; -1 unbounded)
//	-parallelism N  concurrent compilations across -compilers (0 = one
//	                per CPU); note Table III-style compile times are
//	                noisier when compilers share cores
//	-timeout D      abort the whole run after D (e.g. 30s, 2m)
//	-json           emit machine-readable per-circuit results on stdout —
//	                the same schema the muzzled service returns, so CLI
//	                and service outputs are interchangeable; replaces the
//	                human-readable report and the other export flags
//	-trace-json FILE  write the last listed compiler's schedule as JSON
//	-svg FILE       write its trap x time Gantt chart SVG
//	-render         print trap-occupancy snapshots
//	-sim            simulate and print duration/fidelity
//	-verify         replay every schedule through the independent
//	                machine-model verifier (muzzle.Verify); any violation
//	                is printed and fails the run
//
// The command is built on muzzle.Pipeline: compilers resolve from the
// process-wide registry, and -timeout cancels the run cooperatively via
// context.WithTimeout down to the compiler scheduling loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"time"

	"muzzle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzle:", err)
		os.Exit(1)
	}
}

func run() error {
	traps := flag.Int("traps", 6, "number of traps in the linear topology")
	capacity := flag.Int("capacity", 17, "total trap capacity")
	comm := flag.Int("comm", 2, "communication capacity")
	compilers := flag.String("compilers", "optimized",
		`comma-separated registered compiler names (e.g. "baseline,optimized")`)
	proximity := flag.Int("proximity", 0, "future-ops proximity window (0 = paper default 6, -1 = unbounded)")
	parallelism := flag.Int("parallelism", 0, "concurrent compilations across -compilers (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no timeout)")
	jsonOut := flag.Bool("json", false, "emit per-circuit results as JSON on stdout (the muzzled service schema)")
	tracePath := flag.String("trace-json", "", "write the compiled schedule as JSON to this file")
	svgPath := flag.String("svg", "", "write a trap x time Gantt chart SVG to this file")
	render := flag.Bool("render", false, "print trap-occupancy snapshots")
	simulate := flag.Bool("sim", false, "simulate and print duration/fidelity")
	verifyFlag := flag.Bool("verify", false, "replay every schedule through the independent verifier; violations fail the run")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("expected exactly one QASM file, got %d args", flag.NArg())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	names := splitNames(*compilers)
	if len(names) == 0 {
		return fmt.Errorf("-compilers must name at least one registered compiler")
	}
	// A non-default proximity is a compiler variant: register it once and
	// substitute it for "optimized" in the run.
	if *proximity != 0 {
		variant := fmt.Sprintf("optimized-prox%d", *proximity)
		if !muzzle.HasCompiler(variant) {
			prox := *proximity
			if err := muzzle.RegisterCompiler(variant, func() *muzzle.Compiler {
				return muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{Proximity: prox})
			}); err != nil {
				return err
			}
		}
		for i, n := range names {
			if n == muzzle.CompilerOptimized {
				names[i] = variant
			}
		}
	}

	c, err := muzzle.ParseQASMFile(flag.Arg(0))
	if err != nil {
		return err
	}
	machine, err := muzzle.NewLinearMachine(*traps, *capacity, *comm)
	if err != nil {
		return fmt.Errorf("invalid machine flags: %w", err)
	}
	popts := []muzzle.PipelineOption{
		muzzle.WithMachine(machine),
		muzzle.WithCompilers(names...),
		muzzle.WithParallelism(*parallelism),
	}
	if *verifyFlag {
		popts = append(popts, muzzle.WithVerify())
	}
	p, err := muzzle.NewPipeline(popts...)
	if err != nil {
		return err
	}

	// -json takes the evaluation path the muzzled service uses — every
	// listed compiler plus the simulator on one circuit — and emits its
	// result schema, so a script can treat CLI and daemon interchangeably.
	if *jsonOut {
		res, err := p.EvaluateCircuit(ctx, c)
		if err != nil {
			return err
		}
		return muzzle.WriteEvalResultJSON(os.Stdout, res)
	}

	fmt.Printf("circuit %s: %d qubits, %d gates (%d two-qubit)\n",
		c.Name, c.NumQubits, len(c.Gates), c.Count2Q())

	// Compile with every requested compiler, bounded by -parallelism, and
	// report in the listed order.
	par := *parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	results := make([]*muzzle.CompileResult, len(names))
	compileErrs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], compileErrs[i] = p.CompileWith(ctx, name, c)
		}(i, name)
	}
	wg.Wait()

	var first, last *muzzle.CompileResult
	for i, name := range names {
		res, err := results[i], compileErrs[i]
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("%s: timed out after %v: %w", name, *timeout, err)
			}
			return err
		}
		fmt.Printf("%-16s shuttles=%d swaps=%d reorders=%d rebalances=%d compile=%v (direction=%s)\n",
			name, res.Shuttles, res.Swaps, res.Reorders, res.Rebalances,
			res.CompileTime.Round(time.Microsecond), res.DirectionPolicy)
		if *verifyFlag {
			if vs := muzzle.Verify(res); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintf(os.Stderr, "muzzle: %s: VIOLATION %s\n", name, v)
				}
				return fmt.Errorf("%s: schedule failed verification with %d violation(s)", name, len(vs))
			}
			fmt.Printf("%-16s schedule verified: 0 violations across %d ops\n", name, len(res.Ops))
		}
		if *simulate {
			rep, err := p.Simulate(ctx, res)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s duration=%.1fus logFidelity=%.4f fidelity=%.3g maxChainN=%.2f\n",
				name, rep.Duration, rep.LogFidelity, rep.Fidelity, rep.MaxChainN)
		}
		if first == nil {
			first = res
		}
		last = res
	}
	if len(names) > 1 && first.Shuttles > 0 {
		fmt.Printf("reduction vs %s: %d shuttles (%.2f%%)\n", names[0],
			first.Shuttles-last.Shuttles,
			100*float64(first.Shuttles-last.Shuttles)/float64(first.Shuttles))
	}

	if *render {
		if err := muzzle.RenderTrace(os.Stdout, last); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := muzzle.WriteTraceJSON(f, last); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", *tracePath)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := muzzle.WriteScheduleSVG(f, last); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s\n", *svgPath)
	}
	return nil
}

func splitNames(csv string) []string {
	var names []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
