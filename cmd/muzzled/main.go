// Command muzzled is the muzzle compilation service: an HTTP daemon that
// absorbs compile/evaluate jobs into a bounded worker pool backed by
// muzzle.Pipeline, serves repeated work from a content-addressed compile
// cache, coalesces identical in-flight jobs so concurrent duplicates
// compile once, journals every job to a crash-safe write-ahead log, and
// streams per-circuit results over SSE.
//
// Usage:
//
//	muzzled [flags]
//
// Flags:
//
//	-addr ADDR        listen address (default :8077)
//	-workers N        concurrent jobs (default 2)
//	-queue-depth N    admission bound on pending jobs; submits past it are
//	                  rejected with 429 + Retry-After (default 256)
//	-parallelism N    concurrent circuit evaluations per job (0 = one per CPU)
//	-cache N          in-memory compile-cache entries (default 1024; 0 disables)
//	-cache-dir DIR    persist cache entries as JSON under DIR (survives restarts)
//	-cache-disk N     max persisted files under -cache-dir; the oldest (by
//	                  mtime, refreshed on read) are swept past the bound
//	                  (default 16384; 0 = unbounded)
//	-journal DIR      job journal directory (default <cache-dir>/journal when
//	                  -cache-dir is set; empty otherwise disables durability).
//	                  Jobs a dead daemon owed are recovered on restart.
//	-drain-timeout D  how long SIGTERM/SIGINT lets running jobs finish before
//	                  hard-canceling them (default 15s)
//	-pprof ADDR       serve net/http/pprof on ADDR (empty disables)
//	-worker-id ID     name this daemon in the /healthz worker identity block
//	                  (default: a random id per process); a sweep
//	                  coordinator uses it to tell its workers apart
//	-verify           replay every schedule through the independent
//	                  verifier; per-job opt-in is {"verify": true}
//	-traps N          traps in the linear topology (default 6)
//	-capacity N       total trap capacity (default 17)
//	-comm N           communication capacity (default 2)
//
// Endpoints:
//
//	POST   /v1/jobs             submit {"qasm": ...} or {"random": {...}}
//	GET    /v1/jobs/{id}        job snapshot with per-circuit results
//	DELETE /v1/jobs/{id}        cancel a pending or running job (durable)
//	GET    /v1/jobs/{id}/stream SSE per-circuit events (history replayed)
//	POST   /v1/sweeps           submit a scenario-sweep grid
//	POST   /v1/cells            execute one sweep cell synchronously (the
//	                            distributed-sweep worker endpoint; see
//	                            muzzlecoord)
//	GET    /v1/compilers        compiler registry listing
//	GET    /healthz             liveness ("ok" or "draining") + queue depth
//	                            + worker identity
//	GET    /metrics             Prometheus-style metrics
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused (503), the
// listener stops, running jobs get -drain-timeout to finish (stragglers
// are canceled and recovered as pending by the next start), queued jobs
// stay pending in the journal, and the journal is checkpointed before the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only via -pprof
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"muzzle"
	"muzzle/internal/service"
	"muzzle/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muzzled:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queueDepth := flag.Int("queue-depth", 256, "admission bound on pending jobs (submits past it get 429)")
	flag.IntVar(queueDepth, "queue", 256, "alias for -queue-depth")
	parallelism := flag.Int("parallelism", 0, "concurrent circuit evaluations per job (0 = one per CPU)")
	cacheEntries := flag.Int("cache", 1024, "in-memory compile-cache entries (0 disables caching)")
	cacheDir := flag.String("cache-dir", "", "persist compile-cache entries under this directory")
	cacheDisk := flag.Int("cache-disk", 16384, "max persisted cache files under -cache-dir (0 = unbounded)")
	journalDir := flag.String("journal", "", "job journal directory (default <cache-dir>/journal; empty without -cache-dir disables durability)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown lets running jobs finish")
	traps := flag.Int("traps", 6, "number of traps in the linear topology")
	capacity := flag.Int("capacity", 17, "total trap capacity")
	comm := flag.Int("comm", 2, "communication capacity")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	verifyAll := flag.Bool("verify", false, "replay every schedule through the independent verifier (forces per-request verify on)")
	workerID := flag.String("worker-id", "", "worker identity reported on /healthz (default: a random id per process)")
	flag.Parse()

	// Live profiling of the compile hot paths. The profiler runs on its own
	// listener (the default mux, where the blank pprof import registers its
	// handlers) so the job API surface never exposes debug endpoints; it is
	// entirely off unless -pprof is given.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var cache *muzzle.Cache
	if *cacheEntries > 0 {
		var err error
		cache, err = muzzle.NewCache(muzzle.CacheConfig{MaxEntries: *cacheEntries, Dir: *cacheDir, MaxDiskEntries: *cacheDisk})
		if err != nil {
			return err
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir requires caching enabled (-cache > 0)")
	}

	// The journal defaults into the disk-cache directory because the two
	// are designed to restart together: the journal re-enqueues the jobs a
	// dead daemon owed, and the persisted cache makes re-running their
	// completed circuits free.
	jdir := *journalDir
	if jdir == "" && *cacheDir != "" {
		jdir = filepath.Join(*cacheDir, "journal")
	}
	var journal *store.Journal
	if jdir != "" {
		var err error
		journal, err = store.Open(jdir, store.Options{})
		if err != nil {
			return err
		}
		defer journal.Close()
		if s := journal.Stats(); s.Jobs > 0 || s.TruncatedBytes > 0 {
			log.Printf("journal %s: %d jobs replayed (%d WAL records, %d torn bytes truncated)",
				jdir, s.Jobs, s.Replayed, s.TruncatedBytes)
		}
	}

	machine, err := muzzle.NewLinearMachine(*traps, *capacity, *comm)
	if err != nil {
		return fmt.Errorf("invalid machine flags: %w", err)
	}

	mgr := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		Cache:            cache,
		Flight:           muzzle.NewFlight(),
		Journal:          journal,
		SweepParallelism: *parallelism,
		Verify:           *verifyAll,
		WorkerID:         *workerID,
		PipelineOptions: []muzzle.PipelineOption{
			muzzle.WithMachine(machine),
			muzzle.WithParallelism(*parallelism),
		},
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mgr.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("muzzled listening on %s (workers=%d, queue-depth=%d, cache=%d entries, dir=%q, journal=%q)",
			*addr, *workers, *queueDepth, *cacheEntries, *cacheDir, jdir)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		mgr.Close()
		return err
	case <-ctx.Done():
	}

	// Drain order matters: the manager drains first — admission stops (new
	// submits get 503), running jobs finish within the deadline, and their
	// terminal events close the SSE streams — so Shutdown's wait for active
	// handlers can complete. The other way around, a connected stream would
	// stall Shutdown until its timeout. Queued jobs are deliberately left
	// untouched: the journal holds them as pending for the next start.
	log.Printf("muzzled draining (timeout %s)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	mgr.Drain(drainCtx)
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("muzzled stopped")
	return nil
}
