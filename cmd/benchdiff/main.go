// Command benchdiff maintains and inspects the repo's perf trajectory:
// BENCH_compile.json holds one benchjson snapshot per PR (append, don't
// overwrite), and benchdiff compares consecutive entries' ns/op so a
// regression shows up as a warning in the PR that introduced it.
//
// Usage:
//
//	benchdiff [flags] TRAJECTORY
//
// With no mode flag, compares the last two entries of TRAJECTORY (a JSON
// array of benchjson reports; a legacy single-report file counts as one
// entry) and prints a per-benchmark delta table. Deltas past -threshold
// are flagged as regressions; the exit status stays 0 unless -gate is set,
// because benchmark numbers are only comparable on an idle identical host
// and CI runners are neither.
//
// Flags:
//
//	-new FILE       compare FILE's last snapshot against TRAJECTORY's last
//	                entry instead of comparing TRAJECTORY's last two
//	-append FILE    append FILE's snapshots to TRAJECTORY (creating it, or
//	                converting a legacy single-report file) and exit
//	-threshold PCT  ns/op increase that counts as a regression (default 10)
//	-gate           exit 1 when any benchmark regresses past the threshold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's entry format.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report mirrors cmd/benchjson's top-level document.
type Report struct {
	Note       string      `json:"note,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	newFile := flag.String("new", "", "snapshot file to compare against the trajectory's last entry")
	appendFile := flag.String("append", "", "snapshot file to append to the trajectory")
	threshold := flag.Float64("threshold", 10, "ns/op increase (percent) that counts as a regression")
	gate := flag.Bool("gate", false, "exit nonzero when a benchmark regresses past the threshold")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: benchdiff [flags] TRAJECTORY")
	}
	trajectory := flag.Arg(0)

	if *appendFile != "" {
		return appendSnapshots(trajectory, *appendFile)
	}

	prev, cur, err := pickPair(trajectory, *newFile)
	if err != nil {
		return err
	}
	regressions := diff(prev, cur, *threshold)
	if regressions > 0 && *gate {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", regressions, *threshold)
	}
	return nil
}

// load reads a trajectory or snapshot file: either a JSON array of reports
// or a legacy single-report object (which counts as a one-entry
// trajectory).
func load(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []Report
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one Report
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("%s: neither a report array nor a single report: %w", path, err)
	}
	return []Report{one}, nil
}

// appendSnapshots rewrites the trajectory with the snapshot file's entries
// appended, converting a legacy single-report trajectory to an array.
func appendSnapshots(trajectory, snapshot string) error {
	add, err := load(snapshot)
	if err != nil {
		return err
	}
	var have []Report
	if _, err := os.Stat(trajectory); err == nil {
		if have, err = load(trajectory); err != nil {
			return err
		}
	}
	have = append(have, add...)
	out, err := json.MarshalIndent(have, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(trajectory, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended %d snapshot(s) to %s (%d total)\n", len(add), trajectory, len(have))
	return nil
}

// pickPair selects the two reports to compare: the trajectory's last two
// entries, or with -new, the new file's last snapshot against the
// trajectory's last entry.
func pickPair(trajectory, newFile string) (prev, cur Report, err error) {
	base, err := load(trajectory)
	if err != nil {
		return prev, cur, err
	}
	if newFile != "" {
		fresh, err := load(newFile)
		if err != nil {
			return prev, cur, err
		}
		if len(base) == 0 || len(fresh) == 0 {
			return prev, cur, fmt.Errorf("nothing to compare: %s has %d entries, %s has %d", trajectory, len(base), newFile, len(fresh))
		}
		return base[len(base)-1], fresh[len(fresh)-1], nil
	}
	if len(base) < 2 {
		return prev, cur, fmt.Errorf("%s has %d entries; need two to diff (or use -new)", trajectory, len(base))
	}
	return base[len(base)-2], base[len(base)-1], nil
}

// diff prints the per-benchmark ns/op deltas and returns how many exceeded
// the regression threshold.
func diff(prev, cur Report, threshold float64) int {
	old := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	byName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}

	regressions := 0
	for _, name := range names {
		b := byName[name]
		p, ok := old[name]
		if !ok || p.NsPerOp == 0 {
			fmt.Printf("%-48s %12.0f ns/op  (new)\n", name, b.NsPerOp)
			continue
		}
		delta := (b.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		mark := ""
		if delta > threshold {
			mark = fmt.Sprintf("  REGRESSION (> %.0f%%)", threshold)
			regressions++
		}
		fmt.Printf("%-48s %12.0f -> %12.0f ns/op  %+7.1f%%%s\n", name, p.NsPerOp, b.NsPerOp, delta, mark)
	}
	for name := range old {
		if _, ok := byName[name]; !ok {
			fmt.Printf("%-48s (removed)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("WARNING: %d benchmark(s) slower than the previous snapshot by more than %.0f%%\n", regressions, threshold)
	} else {
		fmt.Printf("ok: no benchmark regressed more than %.0f%% vs the previous snapshot\n", threshold)
	}
	return regressions
}
