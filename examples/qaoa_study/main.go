// QAOA study: sweep the graph density of a QAOA workload and observe how
// shuttle counts and the optimized compiler's advantage scale. QAOA is the
// paper's highest-shuttle benchmark and shows its largest fidelity gain
// (22.68X, Fig. 8); this example shows *why* — the shuttle-to-gate ratio
// grows with graph density.
//
//	go run ./examples/qaoa_study
package main

import (
	"fmt"
	"log"
	"math/rand"

	"muzzle"
)

// qaoaCircuit builds a depth-1 QAOA circuit over a random graph with the
// given number of vertices and edges.
func qaoaCircuit(vertices, edges int, seed int64) *muzzle.Circuit {
	c := muzzle.NewCircuit(fmt.Sprintf("qaoa-%dv-%de", vertices, edges), vertices)
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < vertices; q++ {
		c.Add1Q("h", q)
	}
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		a, b := rng.Intn(vertices), rng.Intn(vertices)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		c.Add2Q("rzz", a, b, 0.42)
	}
	for q := 0; q < vertices; q++ {
		c.Add1Q("rx", q, 0.17)
	}
	return c
}

func main() {
	machine := muzzle.PaperMachine()
	fmt.Println("QAOA graph-density sweep on L6 (capacity 17, comm 2)")
	fmt.Printf("%8s %8s %10s %10s %8s %12s\n",
		"edges", "2Qgates", "baseline", "optimized", "red%", "fidelity X")
	for _, edges := range []int{100, 200, 400, 630, 900} {
		c := qaoaCircuit(64, edges, 42)
		opt := muzzle.DefaultEvalOptions()
		opt.Config = machine
		r, err := muzzle.Evaluate(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		_, pct := r.Reduction()
		fmt.Printf("%8d %8d %10d %10d %7.1f%% %11.2fX\n",
			edges, r.Gates2Q, r.Baseline.Shuttles, r.Optimized.Shuttles, pct, r.Improvement())
	}
	fmt.Println("\nDenser graphs need more inter-trap communication; the")
	fmt.Println("future-ops policy pays off most when each move can satisfy")
	fmt.Println("several upcoming edges (paper Section IV-B/IV-C).")
}
