// QAOA study: sweep the graph density of a QAOA workload and observe how
// shuttle counts and the optimized compiler's advantage scale. QAOA is the
// paper's highest-shuttle benchmark and shows its largest fidelity gain
// (22.68X, Fig. 8); this example shows *why* — the shuttle-to-gate ratio
// grows with graph density. The sweep streams through
// Pipeline.EvaluateStream, so rows print as circuits finish rather than
// after the whole batch.
//
//	go run ./examples/qaoa_study
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"muzzle"
)

// qaoaCircuit builds a depth-1 QAOA circuit over a random graph with the
// given number of vertices and edges.
func qaoaCircuit(vertices, edges int, seed int64) *muzzle.Circuit {
	c := muzzle.NewCircuit(fmt.Sprintf("qaoa-%dv-%de", vertices, edges), vertices)
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < vertices; q++ {
		c.Add1Q("h", q)
	}
	seen := map[[2]int]bool{}
	for len(seen) < edges {
		a, b := rng.Intn(vertices), rng.Intn(vertices)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		c.Add2Q("rzz", a, b, 0.42)
	}
	for q := 0; q < vertices; q++ {
		c.Add1Q("rx", q, 0.17)
	}
	return c
}

func main() {
	ctx := context.Background()
	pipeline, err := muzzle.NewPipeline(muzzle.WithMachine(muzzle.PaperMachine()))
	if err != nil {
		log.Fatal(err)
	}

	edgeCounts := []int{100, 200, 400, 630, 900}
	circuits := make([]*muzzle.Circuit, len(edgeCounts))
	for i, edges := range edgeCounts {
		circuits[i] = qaoaCircuit(64, edges, 42)
	}

	fmt.Println("QAOA graph-density sweep on L6 (capacity 17, comm 2)")
	fmt.Printf("%8s %8s %10s %10s %8s %12s\n",
		"edges", "2Qgates", "baseline", "optimized", "red%", "fidelity X")

	// Stream results as circuits complete; collect them to print in sweep
	// order at the end.
	type row struct {
		idx    int
		result *muzzle.EvalResult
	}
	var rows []row
	for item := range pipeline.EvaluateStream(ctx, circuits) {
		if item.Err != nil {
			log.Fatal(item.Err)
		}
		rows = append(rows, row{item.Index, item.Result})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].idx < rows[j].idx })
	for _, r := range rows {
		base, opt := r.result.Pair()
		_, pct := r.result.Reduction()
		fmt.Printf("%8d %8d %10d %10d %7.1f%% %11.2fX\n",
			edgeCounts[r.idx], r.result.Gates2Q, base.Result.Shuttles, opt.Result.Shuttles,
			pct, r.result.Improvement())
	}
	fmt.Println("\nDenser graphs need more inter-trap communication; the")
	fmt.Println("future-ops policy pays off most when each move can satisfy")
	fmt.Println("several upcoming edges (paper Section IV-B/IV-C).")
}
