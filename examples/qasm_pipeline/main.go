// QASM pipeline: a complete tool-chain walk — generate a circuit, write it
// as OpenQASM 2.0, parse it back, compile it through a Pipeline with a
// deadline, and export the schedule as JSON and as an SVG timeline.
//
//	go run ./examples/qasm_pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"muzzle"
)

func main() {
	// Every Pipeline call is context-aware; a deadline bounds the whole
	// walk (compilation aborts cooperatively if it ever blows the budget).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	dir, err := os.MkdirTemp("", "muzzle-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate and serialize a circuit.
	circuit := muzzle.QFT(20)
	qasmPath := filepath.Join(dir, "qft20.qasm")
	if err := muzzle.WriteQASMFile(qasmPath, circuit); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(qasmPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", qasmPath, info.Size())

	// 2. Parse it back — the round trip is exact.
	parsed, err := muzzle.ParseQASMFile(qasmPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d qubits, %d gates (%d two-qubit)\n",
		parsed.Name, parsed.NumQubits, len(parsed.Gates), parsed.Count2Q())

	// 3. Compile with the paper's optimized compiler (the pipeline's
	// primary) on the paper's machine.
	pipeline, err := muzzle.NewPipeline()
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.Compile(ctx, parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d shuttles, %d reorders, %d rebalances in %v\n",
		res.Shuttles, res.Reorders, res.Rebalances, res.CompileTime)

	// 4. Export the schedule.
	jsonPath := filepath.Join(dir, "schedule.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := muzzle.WriteTraceJSON(jf, res); err != nil {
		log.Fatal(err)
	}
	jf.Close()
	svgPath := filepath.Join(dir, "schedule.svg")
	sf, err := os.Create(svgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := muzzle.WriteScheduleSVG(sf, res); err != nil {
		log.Fatal(err)
	}
	sf.Close()
	for _, p := range []string{jsonPath, svgPath} {
		st, err := os.Stat(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported %s (%d bytes)\n", p, st.Size())
	}

	// 5. Simulate for the physics verdict.
	rep, err := pipeline.Simulate(ctx, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %.1f ms, fidelity %.4f, peak chain n̄ %.2f\n",
		rep.Duration/1000, rep.Fidelity, rep.MaxChainN)
}
