// Fidelity study: demonstrate the paper's Section IV-C mechanism — shuttle
// operations heat ion chains (raise the motional mode n̄), and hot chains
// degrade every subsequent gate. The example compiles one workload with the
// three optimizations toggled individually (an ablation) and reports
// shuttles, peak chain energy, and program fidelity for each variant.
//
//	go run ./examples/fidelity_study
package main

import (
	"fmt"
	"log"
	"math"

	"muzzle"
)

func main() {
	workload := muzzle.RandomCircuit(70, 1400, 7)
	machine := muzzle.PaperMachine()
	fmt.Printf("workload: %d qubits, %d two-qubit gates on L6\n\n",
		workload.NumQubits, workload.Count2Q())

	variants := []struct {
		name string
		comp *muzzle.Compiler
	}{
		{"baseline (ISCA'20)", muzzle.NewBaselineCompiler()},
		{"+ future-ops only", muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{
			DisableReorder: true, DisableNNRebalance: true})},
		{"+ reorder only", muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{
			DisableFutureOps: true, DisableNNRebalance: true})},
		{"+ NN rebalance only", muzzle.NewOptimizedCompilerWithOptions(muzzle.OptimizerOptions{
			DisableFutureOps: true, DisableReorder: true})},
		{"full optimized", muzzle.NewOptimizedCompiler()},
	}

	fmt.Printf("%-22s %9s %10s %12s %14s\n",
		"compiler", "shuttles", "max n̄", "logFidelity", "duration (ms)")
	var baseLog float64
	for i, v := range variants {
		res, err := v.comp.Compile(workload, machine)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := muzzle.Simulate(res)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseLog = rep.LogFidelity
		}
		fmt.Printf("%-22s %9d %10.2f %12.3f %14.1f\n",
			v.name, res.Shuttles, rep.MaxChainN, rep.LogFidelity, rep.Duration/1000)
		if i == len(variants)-1 {
			imp := rep.LogFidelity - baseLog
			fmt.Printf("\nfull-optimized fidelity improvement over baseline: exp(%.3f) = %.2fX\n",
				imp, math.Exp(imp))
		}
	}
	fmt.Println("\nFewer shuttles -> fewer SPLIT/MOVE/MERGE heating events -> cooler")
	fmt.Println("chains -> higher per-gate fidelity (F = 1 - Γτ - A(2n̄+1)).")
}
