// Fidelity study: demonstrate the paper's Section IV-C mechanism — shuttle
// operations heat ion chains (raise the motional mode n̄), and hot chains
// degrade every subsequent gate. The example registers each ablation
// variant (the three optimizations toggled individually) as a named
// compiler and runs all five through ONE Pipeline.EvaluateCircuit call —
// the N-compiler comparison the registry makes possible.
//
//	go run ./examples/fidelity_study
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"muzzle"
)

func main() {
	ctx := context.Background()

	// Register the ablation variants next to the pre-registered pair. A
	// registered name participates in any evaluation run from here on.
	variants := []struct {
		name string
		opts muzzle.OptimizerOptions
	}{
		{"future-ops-only", muzzle.OptimizerOptions{DisableReorder: true, DisableNNRebalance: true}},
		{"reorder-only", muzzle.OptimizerOptions{DisableFutureOps: true, DisableNNRebalance: true}},
		{"nn-rebalance-only", muzzle.OptimizerOptions{DisableFutureOps: true, DisableReorder: true}},
	}
	for _, v := range variants {
		opts := v.opts
		muzzle.MustRegisterCompiler(v.name, func() *muzzle.Compiler {
			return muzzle.NewOptimizedCompilerWithOptions(opts)
		})
	}
	order := []string{
		muzzle.CompilerBaseline,
		"future-ops-only",
		"reorder-only",
		"nn-rebalance-only",
		muzzle.CompilerOptimized,
	}

	pipeline, err := muzzle.NewPipeline(
		muzzle.WithMachine(muzzle.PaperMachine()),
		muzzle.WithCompilers(order...),
	)
	if err != nil {
		log.Fatal(err)
	}

	workload := muzzle.RandomCircuit(70, 1400, 7)
	fmt.Printf("workload: %d qubits, %d two-qubit gates on L6\n\n",
		workload.NumQubits, workload.Count2Q())

	result, err := pipeline.EvaluateCircuit(ctx, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %9s %10s %12s %14s\n",
		"compiler", "shuttles", "max n̄", "logFidelity", "duration (ms)")
	var baseLog float64
	for i, name := range order {
		o := result.Outcome(name)
		if i == 0 {
			baseLog = o.Sim.LogFidelity
		}
		fmt.Printf("%-22s %9d %10.2f %12.3f %14.1f\n",
			name, o.Result.Shuttles, o.Sim.MaxChainN, o.Sim.LogFidelity, o.Sim.Duration/1000)
	}
	full := result.Outcome(muzzle.CompilerOptimized)
	imp := full.Sim.LogFidelity - baseLog
	fmt.Printf("\nfull-optimized fidelity improvement over baseline: exp(%.3f) = %.2fX\n",
		imp, math.Exp(imp))
	fmt.Println("\nFewer shuttles -> fewer SPLIT/MOVE/MERGE heating events -> cooler")
	fmt.Println("chains -> higher per-gate fidelity (F = 1 - Γτ - A(2n̄+1)).")
}
