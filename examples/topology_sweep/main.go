// Topology sweep: compile the same workload onto linear, ring, and grid
// trap topologies and compare shuttle counts. The paper evaluates on the
// linear L6 model (Section IV-A) and notes richer topologies as the setting
// where nearest-neighbor-first re-balancing matters most (Fig. 7 is a
// traffic-block scenario specific to constrained paths). Each topology gets
// its own Pipeline — the machine is pipeline state, the compilers resolve
// from the shared registry.
//
//	go run ./examples/topology_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"muzzle"
)

func main() {
	ctx := context.Background()
	workload := muzzle.RandomCircuit(64, 1200, 20220101)
	fmt.Printf("workload: %d qubits, %d two-qubit gates\n\n",
		workload.NumQubits, workload.Count2Q())

	must := func(cfg muzzle.MachineConfig, err error) muzzle.MachineConfig {
		if err != nil {
			log.Fatal(err)
		}
		return cfg
	}
	configs := []struct {
		name string
		cfg  muzzle.MachineConfig
	}{
		{"L6 linear (paper)", must(muzzle.NewLinearMachine(6, 17, 2))},
		{"R6 ring", must(muzzle.NewRingMachine(6, 17, 2))},
		{"G2x3 grid", must(muzzle.NewGridMachine(2, 3, 17, 2))},
		{"L8 linear", must(muzzle.NewLinearMachine(8, 13, 2))},
	}

	fmt.Printf("%-18s %9s %10s %8s %9s\n", "topology", "baseline", "optimized", "red%", "diameter")
	for _, tc := range configs {
		pipeline, err := muzzle.NewPipeline(muzzle.WithMachine(tc.cfg))
		if err != nil {
			log.Fatal(err)
		}
		r, err := pipeline.EvaluateCircuit(ctx, workload)
		if err != nil {
			log.Fatal(err)
		}
		base, opt := r.Pair()
		_, pct := r.Reduction()
		fmt.Printf("%-18s %9d %10d %7.1f%% %9d\n",
			tc.name, base.Result.Shuttles, opt.Result.Shuttles, pct, tc.cfg.Topology.Diameter())
	}
	fmt.Println("\nSmaller diameters shorten re-balancing detours; the optimized")
	fmt.Println("compiler's nearest-neighbor eviction exploits them directly.")
}
