// Topology sweep: compile the same workload onto linear, ring, and grid
// trap topologies and compare shuttle counts. The paper evaluates on the
// linear L6 model (Section IV-A) and notes richer topologies as the setting
// where nearest-neighbor-first re-balancing matters most (Fig. 7 is a
// traffic-block scenario specific to constrained paths).
//
//	go run ./examples/topology_sweep
package main

import (
	"fmt"
	"log"

	"muzzle"
)

func main() {
	workload := muzzle.RandomCircuit(64, 1200, 20220101)
	fmt.Printf("workload: %d qubits, %d two-qubit gates\n\n",
		workload.NumQubits, workload.Count2Q())

	configs := []struct {
		name string
		cfg  muzzle.MachineConfig
	}{
		{"L6 linear (paper)", muzzle.LinearMachine(6, 17, 2)},
		{"R6 ring", muzzle.RingMachine(6, 17, 2)},
		{"G2x3 grid", muzzle.GridMachine(2, 3, 17, 2)},
		{"L8 linear", muzzle.LinearMachine(8, 13, 2)},
	}

	fmt.Printf("%-18s %9s %10s %8s %9s\n", "topology", "baseline", "optimized", "red%", "diameter")
	for _, tc := range configs {
		base, err := muzzle.CompileBaseline(workload, tc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := muzzle.Compile(workload, tc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		pct := 100 * float64(base.Shuttles-opt.Shuttles) / float64(base.Shuttles)
		fmt.Printf("%-18s %9d %10d %7.1f%% %9d\n",
			tc.name, base.Shuttles, opt.Shuttles, pct, tc.cfg.Topology.Diameter())
	}
	fmt.Println("\nSmaller diameters shorten re-balancing detours; the optimized")
	fmt.Println("compiler's nearest-neighbor eviction exploits them directly.")
}
