// Quickstart: build a circuit, evaluate it on the paper's 6-trap machine
// with both compilers through the Pipeline API, and compare shuttle counts
// and program fidelity.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"muzzle"
)

func main() {
	ctx := context.Background()

	// A 16-qubit QFT — all-to-all connectivity, the pattern the paper
	// discusses in Section IV-B. NewPipeline() with no options is the
	// paper's setup: the L6 machine and the baseline/optimized pair.
	circuit := muzzle.QFT(16)
	pipeline, err := muzzle.NewPipeline()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit: %s (%d qubits, %d two-qubit gates)\n\n",
		circuit.Name, circuit.NumQubits, circuit.Count2Q())

	// One Evaluate call compiles with every configured compiler and
	// simulates each trace.
	result, err := pipeline.EvaluateCircuit(ctx, circuit)
	if err != nil {
		log.Fatal(err)
	}
	base, opt := result.Pair()

	fmt.Printf("baseline  (ISCA'20 policies): %4d shuttles\n", base.Result.Shuttles)
	fmt.Printf("optimized (this paper):       %4d shuttles\n", opt.Result.Shuttles)
	if delta, pct := result.Reduction(); base.Result.Shuttles > 0 {
		fmt.Printf("reduction: %d shuttles (%.1f%%)\n\n", delta, pct)
	}

	fmt.Printf("baseline  fidelity %.4f in %.1f ms\n", base.Sim.Fidelity, base.Sim.Duration/1000)
	fmt.Printf("optimized fidelity %.4f in %.1f ms\n", opt.Sim.Fidelity, opt.Sim.Duration/1000)
}
