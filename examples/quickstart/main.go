// Quickstart: build a circuit, compile it for the paper's 6-trap machine
// with both compilers, and compare shuttle counts and program fidelity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"muzzle"
)

func main() {
	// A 16-qubit QFT — all-to-all connectivity, the pattern the paper
	// discusses in Section IV-B.
	circuit := muzzle.QFT(16)
	machine := muzzle.PaperMachine() // L6: 6 traps, capacity 17, comm 2

	fmt.Printf("circuit: %s (%d qubits, %d two-qubit gates)\n\n",
		circuit.Name, circuit.NumQubits, circuit.Count2Q())

	baseline, err := muzzle.CompileBaseline(circuit, machine)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := muzzle.Compile(circuit, machine)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline  (ISCA'20 policies): %4d shuttles\n", baseline.Shuttles)
	fmt.Printf("optimized (this paper):       %4d shuttles\n", optimized.Shuttles)
	if baseline.Shuttles > 0 {
		fmt.Printf("reduction: %.1f%%\n\n",
			100*float64(baseline.Shuttles-optimized.Shuttles)/float64(baseline.Shuttles))
	}

	repB, err := muzzle.Simulate(baseline)
	if err != nil {
		log.Fatal(err)
	}
	repO, err := muzzle.Simulate(optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline  fidelity %.4f in %.1f ms\n", repB.Fidelity, repB.Duration/1000)
	fmt.Printf("optimized fidelity %.4f in %.1f ms\n", repO.Fidelity, repO.Duration/1000)
}
