package muzzle

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// testMachine is a small machine that keeps pipeline tests fast (4 traps x
// 6 usable slots = 24 qubits).
func testMachine() MachineConfig { return LinearMachine(4, 8, 2) }

func TestNewPipelineDefaultsAreThePaperSetup(t *testing.T) {
	p, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Compilers(); len(got) != 2 || got[0] != CompilerBaseline || got[1] != CompilerOptimized {
		t.Errorf("default compilers = %v, want [baseline optimized]", got)
	}
	cfg := p.Machine()
	paper := PaperMachine()
	if cfg.Capacity != paper.Capacity || cfg.CommCapacity != paper.CommCapacity ||
		cfg.Topology.NumTraps() != paper.Topology.NumTraps() {
		t.Errorf("default machine %+v differs from PaperMachine", cfg)
	}
	if got := len(p.RandomCircuits()); got != 120 {
		t.Errorf("default random suite has %d circuits, want 120", got)
	}
}

// TestPipelineMatchesLegacyPath pins the tentpole invariant: the zero-option
// Pipeline produces the same shuttle counts as the legacy free-function
// path on the same circuit (both paths share the paper's configuration).
func TestPipelineMatchesLegacyPath(t *testing.T) {
	ctx := context.Background()
	c := RandomCircuit(20, 150, 5)
	p, err := NewPipeline(WithMachine(testMachine()))
	if err != nil {
		t.Fatal(err)
	}

	legacyOpt, err := Compile(c, testMachine())
	if err != nil {
		t.Fatal(err)
	}
	legacyBase, err := CompileBaseline(c, testMachine())
	if err != nil {
		t.Fatal(err)
	}

	viaPipeline, err := p.Compile(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if viaPipeline.Shuttles != legacyOpt.Shuttles {
		t.Errorf("pipeline optimized shuttles %d != legacy %d", viaPipeline.Shuttles, legacyOpt.Shuttles)
	}
	viaName, err := p.CompileWith(ctx, CompilerBaseline, c)
	if err != nil {
		t.Fatal(err)
	}
	if viaName.Shuttles != legacyBase.Shuttles {
		t.Errorf("pipeline baseline shuttles %d != legacy %d", viaName.Shuttles, legacyBase.Shuttles)
	}

	// Evaluate must agree with the legacy Evaluate on both outcomes.
	legacyEvalOpt := DefaultEvalOptions()
	legacyEvalOpt.Config = testMachine()
	legacyRes, err := Evaluate(c, legacyEvalOpt)
	if err != nil {
		t.Fatal(err)
	}
	pipeRes, err := p.EvaluateCircuit(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	lb, lo := legacyRes.Pair()
	pb, po := pipeRes.Pair()
	if lb.Result.Shuttles != pb.Result.Shuttles || lo.Result.Shuttles != po.Result.Shuttles {
		t.Errorf("pipeline eval (%d/%d) != legacy eval (%d/%d)",
			pb.Result.Shuttles, po.Result.Shuttles, lb.Result.Shuttles, lo.Result.Shuttles)
	}
}

// TestPipelineNISQMatchesLegacy runs the full paper NISQ evaluation through
// both the Pipeline and the legacy path and requires identical Table II
// shuttle counts (the acceptance invariant for the API redesign).
func TestPipelineNISQMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full NISQ evaluation in -short mode")
	}
	ctx := context.Background()
	legacy, err := EvaluateNISQ(DefaultEvalOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	viaPipeline, err := p.EvaluateNISQ(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(viaPipeline) {
		t.Fatalf("result counts differ: %d vs %d", len(legacy), len(viaPipeline))
	}
	for i := range legacy {
		lb, lo := legacy[i].Pair()
		pb, po := viaPipeline[i].Pair()
		if legacy[i].Name != viaPipeline[i].Name ||
			lb.Result.Shuttles != pb.Result.Shuttles ||
			lo.Result.Shuttles != po.Result.Shuttles {
			t.Errorf("%s: pipeline (%d/%d) != legacy (%d/%d)", legacy[i].Name,
				pb.Result.Shuttles, po.Result.Shuttles, lb.Result.Shuttles, lo.Result.Shuttles)
		}
	}
}

func TestPipelineOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  PipelineOption
		code ErrorCode
	}{
		{"unknown compiler", WithCompilers("not-a-compiler"), ErrUnknownCompiler},
		{"empty compilers", WithCompilers(), ErrBadOption},
		{"duplicate compilers", WithCompilers("optimized", "optimized"), ErrBadOption},
		{"negative parallelism", WithParallelism(-1), ErrBadOption},
		{"negative random limit", WithRandomLimit(-1), ErrBadOption},
		{"nil mapper", WithMapper(nil), ErrBadOption},
		{"nil progress", WithProgress(nil), ErrBadOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPipeline(tc.opt)
			if err == nil {
				t.Fatal("option accepted")
			}
			var me *Error
			if !errors.As(err, &me) {
				t.Fatalf("error %T is not *muzzle.Error: %v", err, err)
			}
			if me.Code != tc.code {
				t.Errorf("code = %s, want %s", me.Code, tc.code)
			}
		})
	}
}

func TestRegisterCompilerErrors(t *testing.T) {
	if err := RegisterCompiler("", func() *Compiler { return NewOptimizedCompiler() }); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterCompiler("pipeline-test-nilfactory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	err := RegisterCompiler(CompilerOptimized, func() *Compiler { return NewOptimizedCompiler() })
	var me *Error
	if !errors.As(err, &me) || me.Code != ErrDuplicateCompiler {
		t.Errorf("duplicate registration error = %v, want code %s", err, ErrDuplicateCompiler)
	}
}

// TestThirdCompilerInEvaluate is the acceptance check that a compiler
// registered at the public boundary flows through an Evaluate run without
// any harness change.
func TestThirdCompilerInEvaluate(t *testing.T) {
	const name = "pipeline-test-ablation"
	if err := RegisterCompiler(name, func() *Compiler {
		return NewOptimizedCompilerWithOptions(OptimizerOptions{DisableReorder: true})
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range RegisteredCompilers() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s missing from RegisteredCompilers(): %v", name, RegisteredCompilers())
	}

	p, err := NewPipeline(
		WithMachine(testMachine()),
		WithCompilers(CompilerBaseline, CompilerOptimized, name),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.Evaluate(context.Background(), []*Circuit{RandomCircuit(14, 80, 11)})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	third := results[0].Outcome(name)
	if third == nil || third.Result == nil || third.Sim == nil {
		t.Fatal("third compiler outcome missing from Evaluate run")
	}
	// The paper pair still anchors the Table II renderers.
	base, opt := results[0].Pair()
	if base.Compiler != CompilerBaseline || opt.Compiler != CompilerOptimized {
		t.Errorf("Pair = %s/%s, want baseline/optimized", base.Compiler, opt.Compiler)
	}
	if m := FormatCompilerMatrix(results); !strings.Contains(m, name) {
		t.Errorf("compiler matrix missing %s:\n%s", name, m)
	}
}

// TestEvaluateCancellation cancels mid-run over the full 120-circuit
// random suite and requires a prompt return carrying context.Canceled —
// the acceptance bound is one circuit's compile time, approximated here
// with a generous wall-clock ceiling far below the full run's cost.
func TestEvaluateCancellation(t *testing.T) {
	p, err := NewPipeline(WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := p.EvaluateRandom(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var me *Error
	if !errors.As(err, &me) || me.Code != ErrCanceled {
		t.Errorf("err = %v, want *Error with code %s", err, ErrCanceled)
	}
	if len(results) >= 120 {
		t.Errorf("run completed (%d results) despite cancellation", len(results))
	}
	// The full suite takes on the order of a minute; a canceled run must
	// return within roughly one circuit's compile time.
	if elapsed > 15*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestEvaluateTimeout exercises context.WithTimeout end to end (the path
// cmd/muzzle's -timeout flag uses).
func TestEvaluateTimeout(t *testing.T) {
	p, err := NewPipeline(WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = p.EvaluateRandom(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var me *Error
	if !errors.As(err, &me) || me.Code != ErrCanceled {
		t.Errorf("err = %v, want *Error with code %s", err, ErrCanceled)
	}
}

func TestEvaluateStreamAndProgress(t *testing.T) {
	var events []EvalEvent
	p, err := NewPipeline(
		WithMachine(testMachine()),
		WithProgress(func(ev EvalEvent) { events = append(events, ev) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*Circuit{
		RandomCircuit(12, 60, 1),
		RandomCircuit(14, 60, 2),
		RandomCircuit(16, 60, 3),
	}
	items := 0
	for item := range p.EvaluateStream(context.Background(), circuits) {
		if item.Err != nil {
			t.Errorf("circuit %s failed: %v", item.Circuit, item.Err)
		}
		items++
	}
	if items != len(circuits) {
		t.Errorf("streamed %d items, want %d", items, len(circuits))
	}
	var started, completed int
	for _, ev := range events {
		switch ev.Kind {
		case EvalStarted:
			started++
		case EvalCompleted:
			completed++
		}
	}
	if started != len(circuits) || completed != len(circuits) {
		t.Errorf("events started=%d completed=%d, want %d each", started, completed, len(circuits))
	}
}

func TestPipelineSimulateAndMapper(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(
		WithMachine(testMachine()),
		WithMapper(RefinedMapper{}),
		WithSimParams(DefaultSimParams()),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Compile(ctx, RandomCircuit(12, 60, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Simulate(ctx, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shuttles != res.Shuttles {
		t.Errorf("sim shuttles %d != compile shuttles %d", rep.Shuttles, res.Shuttles)
	}
	if rep.Fidelity <= 0 || rep.Fidelity > 1 {
		t.Errorf("fidelity = %g", rep.Fidelity)
	}
}

func TestPipelineCompileUnknownName(t *testing.T) {
	p, err := NewPipeline(WithMachine(testMachine()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.CompileWith(context.Background(), "nope", RandomCircuit(8, 20, 1))
	var me *Error
	if !errors.As(err, &me) || me.Code != ErrUnknownCompiler {
		t.Fatalf("err = %v, want code %s", err, ErrUnknownCompiler)
	}
}

// TestPipelinePartialFailure: Evaluate keeps completed circuits when one
// circuit cannot compile.
func TestPipelinePartialFailure(t *testing.T) {
	p, err := NewPipeline(WithMachine(testMachine()))
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*Circuit{
		RandomCircuit(12, 60, 1),
		RandomCircuit(60, 80, 2), // 60 qubits cannot fit 3x8 slots
		RandomCircuit(14, 60, 3),
	}
	results, err := p.Evaluate(context.Background(), circuits)
	if err == nil {
		t.Fatal("expected partial-failure error")
	}
	var me *Error
	if !errors.As(err, &me) || me.Code != ErrEvaluate {
		t.Errorf("err = %v, want code %s", err, ErrEvaluate)
	}
	if len(results) != 2 {
		t.Errorf("got %d partial results, want 2", len(results))
	}
}

func TestWithRandomSeed(t *testing.T) {
	base, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	// The default seed reproduces the paper's suite exactly.
	paperSeed, err := NewPipeline(WithRandomSeed(DefaultRandomSuiteParams().Seed))
	if err != nil {
		t.Fatal(err)
	}
	want, got := base.RandomCircuits(), paperSeed.RandomCircuits()
	if len(want) != len(got) {
		t.Fatalf("suite sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Name != got[i].Name {
			t.Fatalf("circuit %d: %q vs %q under the paper seed", i, want[i].Name, got[i].Name)
		}
	}
	// A different seed draws a different (but same-shape) suite,
	// reproducibly.
	alt1, err := NewPipeline(WithRandomSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	alt2, err := NewPipeline(WithRandomSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := alt1.RandomCircuits(), alt2.RandomCircuits()
	if len(a1) != 120 {
		t.Fatalf("re-seeded suite has %d circuits, want 120", len(a1))
	}
	same := true
	for i := range a1 {
		if a1[i].Name != a2[i].Name {
			t.Fatalf("seed 7 not reproducible at circuit %d", i)
		}
		if a1[i].Name != want[i].Name {
			same = false
		}
	}
	if same {
		t.Error("seed 7 drew the paper suite; seeds have no effect")
	}
	// WithRandomSeed wins regardless of option order around
	// WithRandomSuite.
	params := DefaultRandomSuiteParams()
	params.Seed = 99
	before, err := NewPipeline(WithRandomSeed(7), WithRandomSuite(params))
	if err != nil {
		t.Fatal(err)
	}
	if before.RandomCircuits()[0].Name != a1[0].Name {
		t.Error("WithRandomSeed applied before WithRandomSuite was overridden")
	}
}

func TestWithCachePipeline(t *testing.T) {
	cache, err := NewCache(CacheConfig{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(WithMachine(testMachine()), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	c := RandomCircuit(12, 60, 5)
	first, err := p.EvaluateCircuit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first run: %+v, want 1 miss", s)
	}
	second, err := p.EvaluateCircuit(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("after second run: %+v, want 1 hit", s)
	}
	if first != second {
		t.Error("cache hit should return the identical result")
	}
	// A different circuit misses.
	if _, err := p.EvaluateCircuit(context.Background(), RandomCircuit(12, 60, 6)); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Fatalf("different circuit should miss: %+v", s)
	}
	// A custom mapper bypasses the cache entirely.
	pm, err := NewPipeline(WithMachine(testMachine()), WithCache(cache), WithMapper(RoundRobinMapper{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.EvaluateCircuit(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("mapper run should not touch the cache: %+v", s)
	}
	if err := func() error {
		_, err := NewPipeline(WithCache(nil))
		return err
	}(); err == nil {
		t.Error("WithCache(nil) should fail")
	}
}

// TestWithProgressComposes: multiple WithProgress options all receive
// every event, in option order.
func TestWithProgressComposes(t *testing.T) {
	var order []string
	p, err := NewPipeline(
		WithMachine(testMachine()),
		WithProgress(func(ev EvalEvent) {
			if ev.Kind == EvalCompleted {
				order = append(order, "first")
			}
		}),
		WithProgress(func(ev EvalEvent) {
			if ev.Kind == EvalCompleted {
				order = append(order, "second")
			}
		}),
		WithParallelism(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(context.Background(), []*Circuit{RandomCircuit(8, 20, 1)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("callback order = %v, want [first second]", order)
	}
}
