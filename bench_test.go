// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see the experiment index in DESIGN.md), plus ablation
// benchmarks for the individual design choices.
//
//	go test -bench=. -benchmem
//
// The per-benchmark sub-benchmarks report shuttles as a custom metric, so a
// -bench run regenerates both the performance numbers (Table III is compile
// time) and the shuttle counts (Table II) in one pass.
package muzzle

import (
	"context"
	"fmt"
	"testing"

	"muzzle/internal/baseline"
	"muzzle/internal/bench"
	"muzzle/internal/circuit"
	"muzzle/internal/compiler"
	"muzzle/internal/core"
	"muzzle/internal/dag"
	"muzzle/internal/exact"
	"muzzle/internal/machine"
	"muzzle/internal/sim"
	"muzzle/internal/topo"
)

// ---- Table I / Fig. 4: move-score computation and the ping-pong case -----

func fig4Setup(b *testing.B) (*compiler.Context, *circuit.Circuit, machine.Config, [][]int) {
	b.Helper()
	c := circuit.New("fig4", 5)
	c.Add2Q("ms", 1, 2)
	c.Add2Q("ms", 2, 3)
	c.Add2Q("ms", 1, 2)
	c.Add2Q("ms", 2, 4)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	placement := [][]int{{0, 1}, {2, 3, 4}}
	st, err := machine.NewState(cfg, placement)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &compiler.Context{State: st, Graph: dag.Build(c), Circ: c, Executed: make([]bool, 4)}
	return ctx, c, cfg, placement
}

// BenchmarkTableI measures the future-ops move-score computation (the
// per-gate cost of the Section III-A policy).
func BenchmarkTableI(b *testing.B) {
	ctx, _, _, _ := fig4Setup(b)
	d := core.FutureOpsDirection{}
	remaining := []int{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sAB, sBA := d.MoveScores(ctx, 1, 2, remaining)
		if sAB != 3 || sBA != 1 {
			b.Fatalf("scores (%d,%d) != Table I (3,1)", sAB, sBA)
		}
	}
}

// BenchmarkFig4 compiles the Fig. 4 ping-pong program with both compilers.
func BenchmarkFig4(b *testing.B) {
	_, c, cfg, placement := fig4Setup(b)
	for _, tc := range []struct {
		name string
		comp *compiler.Compiler
		want int
	}{
		{"baseline", baseline.New(), 4},
		{"optimized", core.New(), 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := tc.comp.CompileMapped(c, cfg, placement)
				if err != nil {
					b.Fatal(err)
				}
				if res.Shuttles != tc.want {
					b.Fatalf("shuttles = %d, want %d", res.Shuttles, tc.want)
				}
			}
		})
	}
}

// ---- Fig. 2 / Fig. 3: substrate micro-benchmarks --------------------------

// BenchmarkFig2DAGBuild measures dependency-graph construction on the
// largest benchmark (QFT-64 decomposed: ~20k gates).
func BenchmarkFig2DAGBuild(b *testing.B) {
	c, err := circuit.Decompose(bench.QFT64())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dag.Build(c)
		if g.NumGates() != len(c.Gates) {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkFig3ShuttlePrimitives measures the SWAP/SPLIT/MOVE/MERGE
// sequence of one hop.
func BenchmarkFig3ShuttlePrimitives(b *testing.B) {
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 1}
	for i := 0; i < b.N; i++ {
		st, err := machine.NewState(cfg, [][]int{{0, 1, 2}, {3, 4, 5}})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Hop(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 6: opportunistic re-ordering ------------------------------------

func BenchmarkFig6(b *testing.B) {
	c := circuit.New("fig6", 7)
	c.Add2Q("ms", 2, 3)
	c.Add2Q("ms", 4, 0)
	c.Add2Q("ms", 2, 5)
	c.Add2Q("ms", 6, 2)
	c.Add2Q("ms", 1, 4)
	cfg := machine.Config{Topology: topo.Linear(2), Capacity: 4, CommCapacity: 0}
	placement := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
	for _, tc := range []struct {
		name string
		comp *compiler.Compiler
		want int
	}{
		{"baseline", baseline.New(), 5},
		{"optimized", core.New(), 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := tc.comp.CompileMapped(c, cfg, placement)
				if err != nil {
					b.Fatal(err)
				}
				if res.Shuttles != tc.want {
					b.Fatalf("shuttles = %d, want %d", res.Shuttles, tc.want)
				}
			}
		})
	}
}

// ---- Fig. 7: re-balancing ---------------------------------------------------

func BenchmarkFig7(b *testing.B) {
	cfg := machine.Config{Topology: topo.Linear(6), Capacity: 6, CommCapacity: 0}
	placement := [][]int{
		{0, 1, 2, 3},
		{4, 5, 6, 7, 8},
		{9, 10},
		{11, 12, 13, 14},
		{15, 16, 17, 18, 19, 20},
		{21},
	}
	c := circuit.New("fig7", 22)
	c.Add2Q("ms", 14, 21)
	for _, tc := range []struct {
		name string
		comp *compiler.Compiler
		want int
	}{
		{"baseline", baseline.New(), 6},
		{"optimized", core.New(), 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := tc.comp.CompileMapped(c, cfg, placement)
				if err != nil {
					b.Fatal(err)
				}
				if res.Shuttles != tc.want {
					b.Fatalf("shuttles = %d, want %d", res.Shuttles, tc.want)
				}
			}
		})
	}
}

// ---- Table II + Table III: the five NISQ benchmarks -----------------------

// benchCompile reports shuttles/op as a custom metric; ns/op is the compile
// time (Table III), shuttles/op is the Table II entry.
func benchCompile(b *testing.B, build func() *circuit.Circuit, comp func() *compiler.Compiler) {
	c := build()
	cfg := machine.PaperL6()
	b.ResetTimer()
	shuttles := 0
	for i := 0; i < b.N; i++ {
		res, err := comp().Compile(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		shuttles = res.Shuttles
	}
	b.ReportMetric(float64(shuttles), "shuttles/op")
}

// BenchmarkTableII regenerates Table II: each sub-benchmark compiles one
// NISQ benchmark with one compiler on the paper's L6 machine.
func BenchmarkTableII(b *testing.B) {
	for _, spec := range bench.Catalog() {
		spec := spec
		b.Run(spec.Name+"/baseline", func(b *testing.B) {
			benchCompile(b, spec.Build, func() *compiler.Compiler { return baseline.New() })
		})
		b.Run(spec.Name+"/optimized", func(b *testing.B) {
			benchCompile(b, spec.Build, func() *compiler.Compiler { return core.New() })
		})
	}
}

// BenchmarkTableIIRandom regenerates the Random row on a fixed
// representative circuit (70 qubits, 1438 two-qubit gates — the suite
// mean).
func BenchmarkTableIIRandom(b *testing.B) {
	build := func() *circuit.Circuit { return bench.Random(70, 1438, 1) }
	b.Run("baseline", func(b *testing.B) {
		benchCompile(b, build, func() *compiler.Compiler { return baseline.New() })
	})
	b.Run("optimized", func(b *testing.B) {
		benchCompile(b, build, func() *compiler.Compiler { return core.New() })
	})
}

// BenchmarkTableIII isolates the compile-time overhead artifact on the two
// largest circuits (QFT and QuadraticForm, 3000-4000 gates — the cases the
// paper uses to argue tractability, Section IV-D).
func BenchmarkTableIII(b *testing.B) {
	for _, spec := range bench.Catalog() {
		if spec.Name != "QFT" && spec.Name != "QuadraticForm" {
			continue
		}
		spec := spec
		b.Run(spec.Name+"/baseline", func(b *testing.B) {
			benchCompile(b, spec.Build, func() *compiler.Compiler { return baseline.New() })
		})
		b.Run(spec.Name+"/optimized", func(b *testing.B) {
			benchCompile(b, spec.Build, func() *compiler.Compiler { return core.New() })
		})
	}
}

// ---- Fig. 8: fidelity pipeline --------------------------------------------

// BenchmarkFigure8 measures the full compile+simulate pipeline that
// produces one Fig. 8 bar, and reports the improvement factor as a custom
// metric.
func BenchmarkFigure8(b *testing.B) {
	for _, spec := range bench.Catalog() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			c := spec.Build()
			cfg := machine.PaperL6()
			params := sim.DefaultParams()
			imp := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb, err := baseline.New().Compile(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ro, err := core.New().Compile(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sb, err := sim.Simulate(cfg, rb.InitialPlacement, rb.Ops, params)
				if err != nil {
					b.Fatal(err)
				}
				so, err := sim.Simulate(cfg, ro.InitialPlacement, ro.Ops, params)
				if err != nil {
					b.Fatal(err)
				}
				imp = so.LogFidelity - sb.LogFidelity
			}
			b.ReportMetric(imp, "logFidelityGain/op")
		})
	}
}

// ---- Ablations: design-choice benchmarks ----------------------------------

// BenchmarkAblationProximity sweeps the gate-proximity parameter
// (Section III-A3 argues 6 is a sweet spot: "not too low... not too
// high").
func BenchmarkAblationProximity(b *testing.B) {
	c := bench.Random(70, 1438, 1)
	cfg := machine.PaperL6()
	for _, prox := range []int{1, 3, 6, 12, -1} {
		prox := prox
		name := fmt.Sprintf("proximity=%d", prox)
		if prox == -1 {
			name = "proximity=unbounded"
		}
		b.Run(name, func(b *testing.B) {
			shuttles := 0
			for i := 0; i < b.N; i++ {
				res, err := core.NewWithOptions(core.Options{Proximity: prox}).Compile(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				shuttles = res.Shuttles
			}
			b.ReportMetric(float64(shuttles), "shuttles/op")
		})
	}
}

// BenchmarkAblationHeuristics toggles each of the three optimizations
// individually, attributing the Table II savings.
func BenchmarkAblationHeuristics(b *testing.B) {
	c := bench.Random(70, 1438, 1)
	cfg := machine.PaperL6()
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-future-ops", core.Options{DisableFutureOps: true}},
		{"no-reorder", core.Options{DisableReorder: true}},
		{"no-nn-rebalance", core.Options{DisableNNRebalance: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			shuttles := 0
			for i := 0; i < b.N; i++ {
				res, err := core.NewWithOptions(v.opts).Compile(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				shuttles = res.Shuttles
			}
			b.ReportMetric(float64(shuttles), "shuttles/op")
		})
	}
}

// BenchmarkQASM measures the parser on the largest benchmark, exercising
// the serialization substrate end to end.
func BenchmarkQASM(b *testing.B) {
	src, err := WriteQASMString(bench.QFT64())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("parse", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := ParseQASM("qft", src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Optimality gap & mapping ablations ------------------------------------

// BenchmarkExactOptimalityGap measures the exact solver on a tiny instance
// and reports the heuristics' shuttle counts next to the optimum —
// the Section IV-E1 heuristic-vs-exact trade-off made concrete.
func BenchmarkExactOptimalityGap(b *testing.B) {
	c := bench.Random(6, 12, 3)
	native, err := circuit.Decompose(c)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Config{Topology: topo.Linear(3), Capacity: 4, CommCapacity: 1}
	placement := [][]int{{0, 1}, {2, 3}, {4, 5}}
	optimum := 0
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := exact.MinShuttles(native, cfg, placement)
			if err != nil {
				b.Fatal(err)
			}
			optimum = v
		}
		b.ReportMetric(float64(optimum), "shuttles/op")
	})
	b.Run("optimized", func(b *testing.B) {
		s := 0
		for i := 0; i < b.N; i++ {
			res, err := core.New().CompileMapped(native, cfg, placement)
			if err != nil {
				b.Fatal(err)
			}
			s = res.Shuttles
		}
		b.ReportMetric(float64(s), "shuttles/op")
	})
	b.Run("baseline", func(b *testing.B) {
		s := 0
		for i := 0; i < b.N; i++ {
			res, err := baseline.New().CompileMapped(native, cfg, placement)
			if err != nil {
				b.Fatal(err)
			}
			s = res.Shuttles
		}
		b.ReportMetric(float64(s), "shuttles/op")
	})
}

// BenchmarkAblationMapping compares initial-mapping policies
// (Section IV-E3) under the optimized compiler on a mid-size workload.
func BenchmarkAblationMapping(b *testing.B) {
	c := bench.Random(64, 1200, 9)
	cfg := machine.PaperL6()
	mappers := []compiler.Placement{
		compiler.GreedyMapper{},
		compiler.RoundRobinMapper{},
		compiler.RandomMapper{Seed: 1},
		compiler.RefinedMapper{},
	}
	for _, m := range mappers {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				res, err := core.New().CompileWithMapper(c, cfg, m)
				if err != nil {
					b.Fatal(err)
				}
				s = res.Shuttles
			}
			b.ReportMetric(float64(s), "shuttles/op")
		})
	}
}

// BenchmarkAblationCooling compares the fidelity pipeline with and without
// sympathetic re-cooling (a model knob the paper's setup leaves off).
func BenchmarkAblationCooling(b *testing.B) {
	c := bench.Random(64, 1200, 9)
	cfg := machine.PaperL6()
	res, err := core.New().Compile(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, cool := range []bool{false, true} {
		cool := cool
		name := "no-cooling"
		if cool {
			name = "cooling"
		}
		b.Run(name, func(b *testing.B) {
			params := sim.DefaultParams()
			if cool {
				params.Cooling = sim.DefaultCooling()
			}
			logF := 0.0
			for i := 0; i < b.N; i++ {
				rep, err := sim.Simulate(cfg, res.InitialPlacement, res.Ops, params)
				if err != nil {
					b.Fatal(err)
				}
				logF = rep.LogFidelity
			}
			b.ReportMetric(logF, "logFidelity/op")
		})
	}
}

// ---- Pipeline API benchmarks ----------------------------------------------

// BenchmarkPipelineCompileQFT16 measures the Pipeline entry point on the
// quickstart workload — the perf trajectory baseline for the public API
// (registry lookup + context plumbing must stay in the noise next to the
// compile itself).
func BenchmarkPipelineCompileQFT16(b *testing.B) {
	p, err := NewPipeline()
	if err != nil {
		b.Fatal(err)
	}
	c := QFT(16)
	ctx := context.Background()
	b.ResetTimer()
	shuttles := 0
	for i := 0; i < b.N; i++ {
		res, err := p.Compile(ctx, c)
		if err != nil {
			b.Fatal(err)
		}
		shuttles = res.Shuttles
	}
	b.ReportMetric(float64(shuttles), "shuttles/op")
}

// BenchmarkPipelineEvaluateRandom8 measures a full streaming evaluation run
// (both compilers + simulation, worker pool) over the first 8 random
// circuits.
func BenchmarkPipelineEvaluateRandom8(b *testing.B) {
	p, err := NewPipeline(WithRandomLimit(8))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := p.EvaluateRandom(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 8 {
			b.Fatalf("got %d results", len(results))
		}
	}
}
